#include "explore/matrix.hpp"

#include <cassert>
#include <chrono>
#include <memory>

#include "bgp/bugs.hpp"
#include "util/log.hpp"

namespace dice::explore {

namespace {

const util::Logger& logger() {
  static util::Logger instance("explore.matrix");
  return instance;
}

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::unique_ptr<core::InputStrategy> make_strategy(
    StrategyKind kind, std::uint64_t strategy_seed, concolic::SolverMemo* memo) {
  switch (kind) {
    case StrategyKind::kConcolic: {
      core::ConcolicStrategy::Options options;
      options.rng_seed = strategy_seed;
      options.solver_memo = memo;
      return std::make_unique<core::ConcolicStrategy>(options);
    }
    case StrategyKind::kGrammar:
      return std::make_unique<core::GrammarStrategy>(/*corruption_rate=*/0.05, strategy_seed,
                                                     /*strict=*/false);
    case StrategyKind::kGrammarStrict:
      return std::make_unique<core::GrammarStrategy>(/*corruption_rate=*/0.0, strategy_seed,
                                                     /*strict=*/true);
    case StrategyKind::kRandom:
      return std::make_unique<core::RandomStrategy>(strategy_seed);
  }
  return std::make_unique<core::RandomStrategy>(strategy_seed);
}

}  // namespace

std::string_view to_string(StrategyKind kind) noexcept {
  switch (kind) {
    case StrategyKind::kConcolic: return "concolic";
    case StrategyKind::kGrammar: return "grammar";
    case StrategyKind::kGrammarStrict: return "grammar-strict";
    case StrategyKind::kRandom: return "random";
  }
  return "?";
}

std::vector<ScenarioSpec> default_bench_scenarios() {
  std::vector<ScenarioSpec> scenarios;
  scenarios.push_back({"internet9-clean", bgp::make_internet({2, 3, 4})});

  bgp::SystemBlueprint hijack = bgp::make_internet({2, 3, 4});
  bgp::inject_hijack(hijack, /*victim=*/5, /*attacker=*/8);
  scenarios.push_back({"internet9-hijack", std::move(hijack)});

  scenarios.push_back({"bad-gadget", bgp::make_bad_gadget()});
  scenarios.push_back({"ring6", bgp::make_ring(6)});

  bgp::SystemBlueprint fig1 = bgp::make_internet();  // 27 routers (paper Fig. 1)
  bgp::inject_hijack(fig1, /*victim=*/12, /*attacker=*/20, /*more_specific=*/true);
  bgp::inject_bug(fig1, /*node=*/5, bgp::bugs::kCommunityLength);
  scenarios.push_back({"topology27", std::move(fig1)});
  return scenarios;
}

ScenarioMatrix::ScenarioMatrix(std::vector<ScenarioSpec> scenarios, MatrixOptions options)
    : scenarios_(std::move(scenarios)), options_(std::move(options)) {
  // One SystemPrototype per scenario for the MATRIX's lifetime (not per
  // run): prototype identity is what lets worker arenas keep their System
  // across cells and what keys the LiveStateCache — a shared cache serves
  // repeat run() soaks only if the key survives between them.
  prototypes_.reserve(scenarios_.size());
  for (const ScenarioSpec& spec : scenarios_) {
    prototypes_.push_back(std::make_shared<const core::SystemPrototype>(spec.blueprint));
  }
}

MatrixResult ScenarioMatrix::run(ExplorePool& pool) {
  struct Cell {
    std::size_t scenario = 0;
    StrategyKind strategy = StrategyKind::kGrammar;
    std::uint64_t seed = 0;
  };
  std::vector<Cell> cells;
  cells.reserve(cell_count());
  for (std::size_t s = 0; s < scenarios_.size(); ++s) {
    for (const StrategyKind kind : options_.strategies) {
      for (const std::uint64_t seed : options_.seeds) {
        cells.push_back(Cell{s, kind, seed});
      }
    }
  }

  MatrixResult result;
  result.cells.resize(cells.size());
  const ExplorePool::Stats pool_before = pool.stats();

  // One shared cache maximizes cross-cell reuse; per-cell caches keep every
  // cell's solving history independent of scheduling.
  SolverCache shared_cache;
  std::vector<std::unique_ptr<SolverCache>> cell_caches;
  if (!options_.share_solver_cache) {
    cell_caches.resize(cells.size());
    for (auto& cache : cell_caches) cache = std::make_unique<SolverCache>();
  }

  // Cells push their (already per-cell deduplicated) faults here as they
  // finish. Keys are salted with the cell index: the same signature in two
  // scenarios is two distinct findings.
  FaultLedger ledger;

  // Bootstrap-once: cells of the same (scenario, seed) share one converged
  // live state through the cache (the first cell donates, the rest resume).
  LiveStateCache private_cache;
  LiveStateCache* live_cache =
      options_.live_cache != nullptr ? options_.live_cache : &private_cache;
  const LiveStateCache::Stats cache_before = live_cache->stats();

  pool.run_batch(cells.size(), [&](std::size_t index, std::size_t worker) {
    const Cell& cell = cells[index];
    const ScenarioSpec& spec = scenarios_[cell.scenario];
    CellResult& out = result.cells[index];
    out.scenario = spec.name;
    out.strategy = cell.strategy;
    out.seed = cell.seed;

    const auto start = Clock::now();
    core::DiceOptions dice = options_.dice;
    dice.parallelism = 1;  // cells are the parallel unit
    // Disjoint stream ids (2i, 2i+1) keep every cell's clone-RNG root and
    // strategy stream distinct from every other cell's, even when cells
    // share the same matrix seed.
    dice.rng_seed = util::Rng(cell.seed).fork(2 * index).next();
    // The cell runs its clones serially on this worker's arena; the shared
    // per-scenario prototype lets the arena's System survive across cells.
    core::Orchestrator orchestrator(prototypes_[cell.scenario], dice, &pool.arena(worker));
    if (options_.live_state_cache) {
      out.bootstrap_converged = orchestrator.bootstrap_cached(
          *live_cache, cell.seed, options_.bootstrap_events);
      out.bootstrap_from_cache = orchestrator.bootstrap_from_cache();
    } else {
      out.bootstrap_converged = orchestrator.bootstrap(options_.bootstrap_events);
    }
    out.bootstrap_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start).count();

    // Every cell derives its own independent deterministic stream: the
    // strategy seed depends only on (seed, cell index), never on which
    // worker picked the cell up or when.
    const std::uint64_t strategy_seed = util::Rng(cell.seed).fork(2 * index + 1).next();
    SolverCache* cache =
        options_.share_solver_cache ? &shared_cache : cell_caches[index].get();
    const std::unique_ptr<core::InputStrategy> strategy =
        make_strategy(cell.strategy, strategy_seed, cache);

    for (std::size_t episode = 0; episode < options_.episodes_per_cell; ++episode) {
      const core::EpisodeResult episode_result = orchestrator.run_episode(*strategy);
      ++out.episodes;
      out.clones_run += episode_result.clones_run;
      out.inputs_subjected += episode_result.inputs_subjected;
    }
    const std::vector<core::FaultReport>& faults = orchestrator.all_faults();
    out.faults = faults.size();
    // 32-bit priority bands (was 20-bit: a cell recording 2^20 faults bled
    // into the next cell's band and corrupted serial-order dedup). The
    // const-ref record_all leaves the orchestrator's vector untouched and
    // copies only reports that actually land in the ledger.
    assert(faults.size() < (std::uint64_t{1} << 32));
    ledger.record_all(faults, static_cast<std::uint64_t>(index) << 32,
                      /*key_salt=*/index + 1);
    out.wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    logger().info() << "cell " << spec.name << "/" << to_string(cell.strategy) << "/s"
                    << cell.seed << ": " << out.faults << " fault(s), "
                    << out.clones_run << " clones";
  });

  result.faults = ledger.snapshot_sorted();
  if (options_.share_solver_cache) {
    result.solver_cache = shared_cache.stats();
  } else {
    for (const auto& cache : cell_caches) {
      const SolverCache::Stats stats = cache->stats();
      result.solver_cache.hits += stats.hits;
      result.solver_cache.misses += stats.misses;
      result.solver_cache.stores += stats.stores;
      result.solver_cache.entries += stats.entries;
      result.solver_cache.sat_entries += stats.sat_entries;
    }
  }
  const LiveStateCache::Stats cache_after = live_cache->stats();
  result.live_cache.hits = cache_after.hits - cache_before.hits;
  result.live_cache.misses = cache_after.misses - cache_before.misses;
  result.live_cache.uncacheable = cache_after.uncacheable - cache_before.uncacheable;
  const ExplorePool::Stats pool_after = pool.stats();
  result.pool.batches = pool_after.batches - pool_before.batches;
  result.pool.tasks_run = pool_after.tasks_run - pool_before.tasks_run;
  result.pool.steals = pool_after.steals - pool_before.steals;
  return result;
}

}  // namespace dice::explore
