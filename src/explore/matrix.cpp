#include "explore/matrix.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <memory>
#include <unordered_map>

#include "bgp/bugs.hpp"
#include "explore/merge.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "util/log.hpp"

namespace dice::explore {

namespace {

const util::Logger& logger() {
  static util::Logger instance("explore.matrix");
  return instance;
}

struct MatrixMetrics {
  obs::Counter& cells_completed;
  obs::Histogram& bootstrap_ms;
};

[[nodiscard]] MatrixMetrics& matrix_metrics() {
  static MatrixMetrics metrics{
      obs::MetricsRegistry::global().counter(obs::names::kCellsCompleted),
      obs::MetricsRegistry::global().histogram(obs::names::kBootstrapMs)};
  return metrics;
}

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::unique_ptr<core::InputStrategy> make_strategy(
    StrategyKind kind, std::uint64_t strategy_seed, concolic::SolverMemo* memo) {
  switch (kind) {
    case StrategyKind::kConcolic: {
      core::ConcolicStrategy::Options options;
      options.rng_seed = strategy_seed;
      options.solver_memo = memo;
      return std::make_unique<core::ConcolicStrategy>(options);
    }
    case StrategyKind::kGrammar:
      return std::make_unique<core::GrammarStrategy>(/*corruption_rate=*/0.05, strategy_seed,
                                                     /*strict=*/false);
    case StrategyKind::kGrammarStrict:
      return std::make_unique<core::GrammarStrategy>(/*corruption_rate=*/0.0, strategy_seed,
                                                     /*strict=*/true);
    case StrategyKind::kRandom:
      return std::make_unique<core::RandomStrategy>(strategy_seed);
  }
  return std::make_unique<core::RandomStrategy>(strategy_seed);
}

}  // namespace

std::vector<std::size_t> interleave_keys(const std::vector<std::size_t>& keys) {
  // Bucket indices per key, preserving arrival order within a key and
  // first-appearance order across keys; then deal one index per key per
  // round. [A,A,A,B,B,B] -> [A0,B3,A1,B4,A2,B5].
  std::vector<std::size_t> distinct;
  std::unordered_map<std::size_t, std::vector<std::size_t>> buckets;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto [it, inserted] = buckets.try_emplace(keys[i]);
    if (inserted) distinct.push_back(keys[i]);
    it->second.push_back(i);
  }
  std::vector<std::size_t> order;
  order.reserve(keys.size());
  for (std::size_t round = 0; order.size() < keys.size(); ++round) {
    for (const std::size_t key : distinct) {
      const std::vector<std::size_t>& bucket = buckets[key];
      if (round < bucket.size()) order.push_back(bucket[round]);
    }
  }
  return order;
}

std::string_view to_string(StrategyKind kind) noexcept {
  switch (kind) {
    case StrategyKind::kConcolic: return "concolic";
    case StrategyKind::kGrammar: return "grammar";
    case StrategyKind::kGrammarStrict: return "grammar-strict";
    case StrategyKind::kRandom: return "random";
  }
  return "?";
}

std::vector<CellIdentity> enumerate_cells(std::size_t scenario_count,
                                          const MatrixOptions& options) {
  // The implementation axis is the INNERMOST loop: with the default
  // single-"" axis every cell index (and so every derived RNG stream and
  // ledger priority) is identical to the pre-axis enumeration.
  const std::size_t impl_count =
      options.implementations.empty() ? 1 : options.implementations.size();
  std::vector<CellIdentity> cells;
  cells.reserve(scenario_count * options.strategies.size() * options.seeds.size() *
                impl_count);
  for (std::size_t s = 0; s < scenario_count; ++s) {
    for (const StrategyKind kind : options.strategies) {
      for (std::size_t seed_pos = 0; seed_pos < options.seeds.size(); ++seed_pos) {
        for (std::size_t impl_pos = 0; impl_pos < impl_count; ++impl_pos) {
          cells.push_back(
              CellIdentity{s, kind, options.seeds[seed_pos], seed_pos, impl_pos});
        }
      }
    }
  }
  return cells;
}

std::vector<ScenarioSpec> default_bench_scenarios() {
  std::vector<ScenarioSpec> scenarios;
  scenarios.push_back({"internet9-clean", bgp::make_internet({2, 3, 4})});

  bgp::SystemBlueprint hijack = bgp::make_internet({2, 3, 4});
  bgp::inject_hijack(hijack, /*victim=*/5, /*attacker=*/8);
  scenarios.push_back({"internet9-hijack", std::move(hijack)});

  scenarios.push_back({"bad-gadget", bgp::make_bad_gadget()});
  scenarios.push_back({"ring6", bgp::make_ring(6)});

  bgp::SystemBlueprint fig1 = bgp::make_internet();  // 27 routers (paper Fig. 1)
  bgp::inject_hijack(fig1, /*victim=*/12, /*attacker=*/20, /*more_specific=*/true);
  bgp::inject_bug(fig1, /*node=*/5, bgp::bugs::kCommunityLength);
  scenarios.push_back({"topology27", std::move(fig1)});
  return scenarios;
}

ScenarioMatrix::ScenarioMatrix(std::vector<ScenarioSpec> scenarios, MatrixOptions options)
    : scenarios_(std::move(scenarios)), options_(std::move(options)) {
  // An empty axis would mean zero cells but also zero prototypes to index;
  // normalize to the documented default ("" = blueprint as authored).
  if (options_.implementations.empty()) {
    options_.implementations.push_back(std::string());
  }
  // One SystemPrototype per (scenario, implementation) for the MATRIX's
  // lifetime (not per run): prototype identity is what lets worker arenas
  // keep their System across cells and what keys the LiveStateCache — a
  // shared cache serves repeat run() soaks only if the key survives between
  // them, and two implementation-axis variants of one scenario are two
  // different live systems that must never share a cached bootstrap.
  prototypes_.reserve(scenarios_.size() * options_.implementations.size());
  for (const ScenarioSpec& spec : scenarios_) {
    for (const std::string& impl : options_.implementations) {
      if (impl.empty()) {
        prototypes_.push_back(
            std::make_shared<const core::SystemPrototype>(spec.blueprint));
      } else {
        bgp::SystemBlueprint variant = spec.blueprint;
        variant.set_all_implementations(impl);
        prototypes_.push_back(std::make_shared<const core::SystemPrototype>(variant));
      }
    }
  }
}

MatrixResult ScenarioMatrix::run(ExplorePool& pool, const RunControl& control) {
  // The shared canonical enumeration (also what shard::ShardCoordinator
  // deals from — the two MUST agree or cross-process merge bytes drift).
  const std::vector<CellIdentity> cells = enumerate_cells(scenarios_.size(), options_);

  // Shard-subset membership: a cell outside the subset is flushed as
  // skipped without running (and without touching the stop token or the
  // wall observer) — see MatrixOptions::cell_subset.
  std::vector<unsigned char> in_subset;
  if (options_.cell_subset.has_value()) {
    in_subset.assign(cells.size(), 0);
    for (const std::size_t index : *options_.cell_subset) {
      if (index < cells.size()) in_subset[index] = 1;
    }
  }

  MatrixResult result;
  result.cells.resize(cells.size());
  // Prefill every cell's identity up front: a cell the stop token skips
  // (its task may never even run after a pool drain) must still describe
  // itself in the partial result and in observer events.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    result.cells[i].scenario = scenarios_[cells[i].scenario].name;
    result.cells[i].strategy = cells[i].strategy;
    result.cells[i].seed = cells[i].seed;
    result.cells[i].implementation = options_.implementations[cells[i].impl_pos];
  }
  const ExplorePool::Stats pool_before = pool.stats();

  // One shared cache maximizes cross-cell reuse; per-cell caches keep every
  // cell's solving history independent of scheduling. Either kind is
  // pre-seeded with any warm-start UNSAT memo: a seeded hit skips solving
  // with the verdict a fresh solve would reach, so fault bytes are
  // unmoved (no SAT model is ever replayed across runs).
  SolverCache shared_cache;
  if (options_.unsat_seed != nullptr) shared_cache.seed_unsat(*options_.unsat_seed);
  std::vector<std::unique_ptr<SolverCache>> cell_caches;
  if (!options_.share_solver_cache) {
    cell_caches.resize(cells.size());
    for (auto& cache : cell_caches) {
      cache = std::make_unique<SolverCache>();
      if (options_.unsat_seed != nullptr) cache->seed_unsat(*options_.unsat_seed);
    }
  }

  // Bootstrap-once: cells of the same (scenario, seed) share one converged
  // live state through the cache (the first cell donates, the rest resume).
  LiveStateCache private_cache;
  LiveStateCache* live_cache =
      options_.live_cache != nullptr ? options_.live_cache : &private_cache;
  const LiveStateCache::Stats cache_before = live_cache->stats();

  // Streaming reorder buffer + per-cell-salted canonical ledger, extracted
  // into CellMerger so shard::ShardCoordinator runs the IDENTICAL merge
  // across processes (docs/SHARDING.md). Cells finish in wall-clock order;
  // the observer sees canonical (cross-product) order, and the merger's
  // flush mutex publishes result.cells[i] from the finishing worker to the
  // flusher.
  CellMerger::Options merge_options;
  merge_options.observer = control.observer;
  merge_options.trace = control.trace;
  merge_options.progress_every_cells = options_.progress_every_cells;
  merge_options.stop = control.stop;
  CellMerger merger(&result.cells, merge_options);

  // Second, liveness-first stream: cells that ran emit their start ->
  // fault* -> done burst the moment their task body finishes, in wall-clock
  // completion order (explicitly non-deterministic). Serialized under its
  // own mutex so a slow wall observer never blocks the canonical reorder
  // buffer above, and vice versa.
  std::mutex wall_mutex;

  const auto descriptor = [&](std::size_t index) {
    const CellIdentity& cell = cells[index];
    return CellDescriptor{index, scenarios_[cell.scenario].name,
                          to_string(cell.strategy), cell.seed,
                          options_.implementations[cell.impl_pos]};
  };

  // The deal: on a multi-worker pool, execution order round-robins across
  // (scenario, seed) bootstrap keys so a batch's first W cells hold W
  // distinct keys — without the interleave, strategy-inner cross-product
  // order parks W-1 workers on one key's once-latch at batch start. A
  // serial pool keeps the identity deal: there is no latch to contend on,
  // and scenario-adjacent cells let the lone worker's arena keep its
  // System across a whole scenario block. Canonical order is untouched
  // either way: `deal` only decides who runs when; every per-cell
  // derivation (slots, seeds, ledger priority) keys off the cell index.
  std::vector<std::size_t> deal;
  if (pool.workers() > 1) {
    std::vector<std::size_t> cell_keys;
    cell_keys.reserve(cells.size());
    for (const CellIdentity& cell : cells) {
      // Bootstrap key = (prototype, seed): the implementation axis picks
      // the prototype, so it is part of the key. Collapses to the historic
      // (scenario, seed) key when the axis is the single default entry.
      cell_keys.push_back(
          (cell.scenario * options_.implementations.size() + cell.impl_pos) *
              options_.seeds.size() +
          cell.seed_pos);
    }
    deal = interleave_keys(cell_keys);
  }

  const bool stoppable = control.stop.stop_possible();
  pool.run_batch(cells.size(), [&](std::size_t dealt, std::size_t worker) {
    const std::size_t index = deal.empty() ? dealt : deal[dealt];
    const CellIdentity& cell = cells[index];
    const ScenarioSpec& spec = scenarios_[cell.scenario];
    CellResult& out = result.cells[index];
    if (!in_subset.empty() && in_subset[index] == 0) {
      // Not this shard's cell: flush it as skipped (started=false) without
      // draining the pool — the rest of the subset still has to run.
      merger.finish_cell(index);
      return;
    }
    if (stoppable && control.stop.stop_requested()) {
      // Between-cells cancellation point: skip the whole cell and drop the
      // still-queued deal so idle peers stop dequeuing doomed work. The
      // skipped cell still lands in the reorder buffer (partial results
      // stay well-formed); drained cells are swept after the batch.
      pool.drain();
      merger.finish_cell(index);
      return;
    }
    out.started = true;
    obs::Span cell_span(control.trace, "cell", static_cast<std::uint32_t>(worker),
                        static_cast<std::uint32_t>(index));

    const auto start = Clock::now();
    core::DiceOptions dice = options_.dice;
    dice.parallelism = 1;  // never a private pool per cell
    dice.trace = control.trace;
    dice.trace_cell = static_cast<std::uint32_t>(index);
    // Nested parallelism: the cell's episodes submit their clone batches
    // back into THIS pool as child tasks of this worker — idle workers
    // steal them across cell boundaries, so even a single parked cell
    // keeps the whole worker budget busy. Off: clones run serially on
    // this worker (the legacy cells-only split, kept as the equivalence
    // baseline). Either way the fault bytes are identical: clone RNG
    // streams and ledger priorities key off canonical indices only.
    dice.shared_pool = options_.nested_parallelism ? &pool : nullptr;
    dice.stop = control.stop;  // polled between clones, never mid-clone
    // Disjoint stream ids (2i, 2i+1) keep every cell's clone-RNG root and
    // strategy stream distinct from every other cell's, even when cells
    // share the same matrix seed.
    dice.rng_seed = util::Rng(cell.seed).fork(2 * index).next();
    // Clones land on the arena of whichever pool worker executes them
    // (nested) or on this worker's arena (serial/legacy); the shared
    // per-scenario prototype lets every arena's System survive across cells.
    core::Orchestrator orchestrator(
        prototypes_[cell.scenario * options_.implementations.size() + cell.impl_pos],
        dice, &pool.arena(worker));
    {
      obs::Span bootstrap_span(control.trace, "bootstrap",
                               static_cast<std::uint32_t>(worker),
                               static_cast<std::uint32_t>(index));
      if (options_.live_state_cache) {
        out.bootstrap_converged = orchestrator.bootstrap_cached(
            *live_cache, cell.seed, options_.bootstrap_events);
        out.bootstrap_from_cache = orchestrator.bootstrap_from_cache();
      } else {
        out.bootstrap_converged = orchestrator.bootstrap(options_.bootstrap_events);
      }
    }
    out.bootstrap_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    matrix_metrics().bootstrap_ms.observe(out.bootstrap_ms);

    // Every cell derives its own independent deterministic stream: the
    // strategy seed depends only on (seed, cell index), never on which
    // worker picked the cell up or when. The override pins every cell to
    // one fixed stream instead (single-cell receipt matrices that must
    // reproduce a standalone harness byte-for-byte).
    const std::uint64_t strategy_seed = options_.strategy_seed.has_value()
                                            ? *options_.strategy_seed
                                            : util::Rng(cell.seed).fork(2 * index + 1).next();
    SolverCache* cache =
        options_.share_solver_cache ? &shared_cache : cell_caches[index].get();
    const std::unique_ptr<core::InputStrategy> strategy =
        make_strategy(cell.strategy, strategy_seed, cache);

    // Between-episodes cancellation points; an episode the token cut short
    // reports interrupted itself. Either way the cell is incomplete and
    // withholds its (partial) faults from the canonical list.
    bool interrupted = stoppable && control.stop.stop_requested();
    for (std::size_t episode = 0;
         !interrupted && episode < options_.episodes_per_cell; ++episode) {
      const core::EpisodeResult episode_result = orchestrator.run_episode(*strategy);
      ++out.episodes;
      out.clones_run += episode_result.clones_run;
      out.inputs_subjected += episode_result.inputs_subjected;
      interrupted = episode_result.interrupted ||
                    (stoppable && episode + 1 < options_.episodes_per_cell &&
                     control.stop.stop_requested());
    }
    out.completed = !interrupted;
    if (out.completed) {
      matrix_metrics().cells_completed.add();
      const std::vector<core::FaultReport>& faults = orchestrator.all_faults();
      out.faults = faults.size();
      // The merger applies the canonical ledger discipline (priority
      // `index << 32`, key salt `index + 1`) and stashes the observer copy.
      merger.record_faults(index, faults);
    }
    out.wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    const std::string& impl = options_.implementations[cell.impl_pos];
    logger().info() << "cell " << spec.name << "/" << to_string(cell.strategy) << "/s"
                    << cell.seed << (impl.empty() ? "" : "/" + impl) << ": "
                    << out.faults << " fault(s), "
                    << out.clones_run << " clones"
                    << (out.completed ? "" : " [cancelled]");
    if (control.wall_observer != nullptr) {
      const std::lock_guard<std::mutex> wall_lock(wall_mutex);
      const CellDescriptor desc = descriptor(index);
      control.wall_observer->on_cell_start(desc);
      if (out.completed) {
        for (const core::FaultReport& fault : orchestrator.all_faults()) {
          control.wall_observer->on_fault(desc, fault);
        }
      }
      control.wall_observer->on_cell_done(desc, out);
    }
    merger.finish_cell(index);
  });

  // Cells the drain dropped never ran their task body: flush them as
  // skipped so the observer stream and the done flags stay complete.
  merger.finish_remaining();

  // Every recorder has joined (run_batch returned) and every cell was
  // flushed: the trace's canonical ordering is decidable now.
  if (control.trace != nullptr) control.trace->finalize();

  for (const CellResult& cell : result.cells) {
    if (cell.completed) ++result.cells_completed;
  }
  result.stopped = result.cells_completed != result.cells.size();

  result.faults = merger.canonical_faults();
  if (options_.share_solver_cache) {
    result.solver_cache = shared_cache.stats();
    result.unsat_keys = shared_cache.unsat_keys();
  } else {
    for (const auto& cache : cell_caches) {
      const SolverCache::Stats stats = cache->stats();
      result.solver_cache.hits += stats.hits;
      result.solver_cache.misses += stats.misses;
      result.solver_cache.stores += stats.stores;
      result.solver_cache.entries += stats.entries;
      result.solver_cache.sat_entries += stats.sat_entries;
      const std::vector<std::uint64_t> keys = cache->unsat_keys();
      result.unsat_keys.insert(result.unsat_keys.end(), keys.begin(), keys.end());
    }
    std::sort(result.unsat_keys.begin(), result.unsat_keys.end());
    result.unsat_keys.erase(
        std::unique(result.unsat_keys.begin(), result.unsat_keys.end()),
        result.unsat_keys.end());
  }
  const LiveStateCache::Stats cache_after = live_cache->stats();
  result.live_cache.hits = cache_after.hits - cache_before.hits;
  result.live_cache.misses = cache_after.misses - cache_before.misses;
  result.live_cache.uncacheable = cache_after.uncacheable - cache_before.uncacheable;
  result.live_cache.evictions = cache_after.evictions - cache_before.evictions;
  const ExplorePool::Stats pool_after = pool.stats();
  result.pool.batches = pool_after.batches - pool_before.batches;
  result.pool.child_batches = pool_after.child_batches - pool_before.child_batches;
  result.pool.tasks_run = pool_after.tasks_run - pool_before.tasks_run;
  result.pool.child_tasks = pool_after.child_tasks - pool_before.child_tasks;
  result.pool.steals = pool_after.steals - pool_before.steals;
  result.pool.child_steals = pool_after.child_steals - pool_before.child_steals;
  result.pool.helped = pool_after.helped - pool_before.helped;
  result.pool.worker_tasks.assign(pool_after.worker_tasks.size(), 0);
  for (std::size_t w = 0; w < pool_after.worker_tasks.size(); ++w) {
    result.pool.worker_tasks[w] =
        pool_after.worker_tasks[w] - pool_before.worker_tasks[w];
  }
  return result;
}

}  // namespace dice::explore
