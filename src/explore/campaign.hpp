// explore::Campaign — the streaming, cancellable front door of the
// exploration stack.
//
// The paper runs DiCE as a continuous online service beside the live
// system, but the batch-shaped surface underneath (Orchestrator +
// ScenarioMatrix + ExplorePool, with knobs smeared across DiceOptions and
// MatrixOptions) made callers wire the layers by hand and wait for every
// cell before seeing a single fault. Campaign is one object with one verb:
//
//   auto options = CampaignOptions::builder()
//                      .strategies({StrategyKind::kGrammar})
//                      .parallelism(8)
//                      .time_box(std::chrono::minutes(10))
//                      .build();            // validated; Result<CampaignOptions>
//   Campaign campaign(default_bench_scenarios(), options.take());
//   CampaignResult partial = campaign.run(&observer, source.token());
//
// - CampaignOptions layers the knob sprawl into coherent groups (Budgets,
//   Caching, Parallelism, Determinism) and validates at build() time.
// - A CampaignObserver streams every completed cell's faults in canonical
//   order while the run is in flight (control.hpp).
// - A StopToken (or the options deadline) cancels cooperatively: polled
//   between cells, episodes and clones — never mid-clone — so a cancelled
//   run returns a well-formed partial CampaignResult whose completed cells
//   carry fault sets byte-identical to an uncancelled run's, at any worker
//   count.
//
// The pre-Campaign thin wrappers (ScenarioMatrix::run(pool) without a
// RunControl, hand-built MatrixOptions in callers) are gone after their one
// release of migration headroom; driving Orchestrator directly remains
// supported for single-system harnesses. See docs/ARCHITECTURE.md for the
// layer tour and docs/TUNING.md for every knob.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <vector>

#include "explore/control.hpp"
#include "explore/matrix.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/result.hpp"

namespace dice::explore {

/// All exploration knobs, grouped by what they govern. Aggregate-initialize
/// freely or go through CampaignOptions::builder() for validation.
struct CampaignOptions {
  /// How much work a run does (per cell, per episode, per clone).
  struct Budgets {
    std::size_t episodes_per_cell = 1;        ///< was MatrixOptions::episodes_per_cell
    std::size_t inputs_per_episode = 32;      ///< was DiceOptions::inputs_per_episode
    std::size_t bootstrap_events = 500'000;   ///< was MatrixOptions::bootstrap_events
    std::size_t clone_event_budget = 200'000; ///< was DiceOptions::clone_event_budget
    sim::Time clone_time_budget = 120 * sim::kSecond;  ///< was DiceOptions::clone_time_budget
    bool include_baseline_clone = true;       ///< was DiceOptions::include_baseline_clone
  };
  /// What is reused across cells and runs.
  struct Caching {
    bool live_state_cache = true;        ///< was MatrixOptions::live_state_cache
    /// External bootstrap cache shared across campaigns; nullptr = the
    /// campaign owns one for its lifetime (repeat run() soaks still hit).
    LiveStateCache* live_cache = nullptr;  ///< was MatrixOptions::live_cache
    /// LRU bound for the campaign-OWNED cache. An external `live_cache`
    /// keeps the bound it was constructed with; this knob does not rebind
    /// it.
    std::size_t live_cache_max_entries = LiveStateCache::kDefaultMaxEntries;
    bool share_solver_cache = false;     ///< was MatrixOptions::share_solver_cache
    /// Proven-UNSAT solver keys pre-seeded into every solver cache each
    /// run() creates (MatrixOptions::unsat_seed) — the svc::ArtifactStore
    /// warm-start path. Sound and byte-stable: a seeded hit skips solving
    /// with the exact verdict a fresh solve would reach; no SAT model is
    /// ever replayed. Must outlive the campaign's run() calls; nullptr =
    /// no seeding.
    const std::vector<std::uint64_t>* unsat_seed = nullptr;
    bool prepared_clones = true;         ///< was DiceOptions::prepared_clones
    /// Delta checkpoints against the previous prepared snapshot (snapshot
    /// cost follows churn, not topology size). Requires `prepared_clones`;
    /// ignored without it. See DiceOptions::delta_snapshots.
    bool delta_snapshots = true;
  };
  /// Where the work runs. `workers` is the ONE global knob: a single
  /// worker budget that both layers — matrix cells and their episodes'
  /// clone batches — draw from. The old cells-vs-clones split
  /// (DiceOptions::parallelism inside MatrixOptions::dice) is gone; there
  /// is no way to oversubscribe by sizing two layers independently.
  struct Parallelism {
    std::size_t workers = 1;      ///< global worker budget (cells + clones)
    /// External pool shared across campaigns (arena reuse); overrides
    /// `workers`. nullptr = the campaign owns a pool for its lifetime.
    ExplorePool* pool = nullptr;
    /// Nested parallelism (default on): cells submit clone batches back
    /// into the shared pool as child tasks, so a 1-cell campaign still
    /// fills all `workers` workers (idle workers steal a parked cell's
    /// clones). Off = the legacy cells-only schedule, kept as the
    /// equivalence baseline. Fault bytes are identical either way at any
    /// worker count (docs/DETERMINISM.md; `explore_nested_test`).
    bool nested = true;
  };
  /// The passive observability surface (docs/OBSERVABILITY.md). Strictly
  /// read-only with respect to exploration: any Telemetry configuration
  /// leaves every completed cell's fault bytes identical to a run with
  /// telemetry compiled out (the passivity invariant, pinned by test).
  struct Telemetry {
    /// Span sink for the run (cell/bootstrap/episode/snapshot/clone
    /// timing). Campaign::run clears it at start — one run, one trace —
    /// and finalizes it before returning; nullptr = no span capture.
    obs::Trace* trace = nullptr;
    /// Progress cadence: CampaignObserver::on_progress fires once every N
    /// flushed cells (and always for the final cell). Rejected at 0 by
    /// validate().
    std::size_t progress_every_cells = 1;
    /// Liveness-first second observer stream (RunControl::wall_observer;
    /// svc::SoakObserver): the same start -> fault* -> done burst per cell,
    /// delivered the moment each cell finishes, in WALL-CLOCK completion
    /// order — explicitly non-deterministic across runs and worker counts.
    /// The canonical `observer` stream passed to run() is untouched and
    /// remains the CI surface. Strictly passive; nullptr = off.
    CampaignObserver* wall_observer = nullptr;
  };

  /// Everything that pins the byte-identical receipt.
  struct Determinism {
    std::vector<std::uint64_t> seeds{1};   ///< was MatrixOptions::seeds
    /// Node-implementation axis (MatrixOptions::implementations;
    /// docs/HETEROGENEITY.md). Each entry fans the cross-product out once
    /// more: "" = every blueprint as authored (per-node pins honored), a
    /// registry id ("bgp", "fsm") re-homes every node onto that engine.
    /// Innermost axis: the default single-"" entry reproduces the historic
    /// cell indices and fault bytes exactly. Unknown non-"" ids are
    /// rejected by validate().
    std::vector<std::string> implementations{std::string()};
    std::uint64_t rng_seed = 0xd1ce5eed;   ///< was DiceOptions::rng_seed
    /// Overrides the per-cell derived strategy seed with one fixed value
    /// for EVERY cell (MatrixOptions::strategy_seed). For single-cell
    /// receipt campaigns that must reproduce a standalone Orchestrator
    /// harness's input stream byte-for-byte (the svc round receipt);
    /// nullopt = the derived per-cell streams.
    std::optional<std::uint64_t> strategy_seed = std::nullopt;
    std::uint32_t oscillation_threshold = 8;  ///< was DiceOptions::oscillation_threshold
    bool oscillation_early_exit = true;    ///< was DiceOptions::oscillation_early_exit
    bool bootstrap_early_exit = true;      ///< was DiceOptions::bootstrap_early_exit
  };

  std::vector<StrategyKind> strategies{StrategyKind::kGrammar, StrategyKind::kRandom};
  Budgets budgets;
  Caching caching;
  Parallelism parallelism;
  Telemetry telemetry;
  Determinism determinism;
  /// Time-box: run() behaves as if a stop were requested at this instant
  /// (combined with any caller token; the earlier wins).
  std::optional<StopToken::Clock::time_point> deadline;

  class Builder;
  [[nodiscard]] static Builder builder();

  /// Rejects nonsense: no strategies, 0 seeds, 0-event budgets, 0 workers,
  /// an implementation-axis id no engine registered under, a deadline
  /// already in the past. Builder::build() calls this.
  [[nodiscard]] util::Status validate() const;

  /// The legacy option structs this facade lowers to — the migration
  /// receipt: a Campaign drives exactly these underneath, so fault sets
  /// match the old wiring byte for byte.
  [[nodiscard]] core::DiceOptions to_dice_options() const;
  [[nodiscard]] MatrixOptions to_matrix_options() const;
};

/// Fluent assembly with build-time validation.
class CampaignOptions::Builder {
 public:
  Builder& strategies(std::vector<StrategyKind> value) {
    options_.strategies = std::move(value);
    return *this;
  }
  Builder& budgets(Budgets value) {
    options_.budgets = value;
    return *this;
  }
  Builder& caching(Caching value) {
    options_.caching = value;
    return *this;
  }
  Builder& parallelism(Parallelism value) {
    options_.parallelism = value;
    return *this;
  }
  /// Convenience: worker count only — the global budget for cells AND
  /// their clone batches.
  Builder& parallelism(std::size_t workers) {
    options_.parallelism.workers = workers;
    return *this;
  }
  /// Convenience: toggle nested (global-budget) scheduling.
  Builder& nested(bool value) {
    options_.parallelism.nested = value;
    return *this;
  }
  /// Per-knob budget conveniences, for callers migrating from hand-built
  /// DiceOptions/MatrixOptions who only ever set one or two fields.
  Builder& episodes_per_cell(std::size_t value) {
    options_.budgets.episodes_per_cell = value;
    return *this;
  }
  Builder& inputs_per_episode(std::size_t value) {
    options_.budgets.inputs_per_episode = value;
    return *this;
  }
  Builder& bootstrap_events(std::size_t value) {
    options_.budgets.bootstrap_events = value;
    return *this;
  }
  Builder& clone_event_budget(std::size_t value) {
    options_.budgets.clone_event_budget = value;
    return *this;
  }
  Builder& oscillation_threshold(std::uint32_t value) {
    options_.determinism.oscillation_threshold = value;
    return *this;
  }
  Builder& telemetry(Telemetry value) {
    options_.telemetry = value;
    return *this;
  }
  /// Convenience: span sink only.
  Builder& trace(obs::Trace* value) {
    options_.telemetry.trace = value;
    return *this;
  }
  /// Convenience: progress cadence only.
  Builder& progress_every_cells(std::size_t value) {
    options_.telemetry.progress_every_cells = value;
    return *this;
  }
  /// Convenience: liveness-first wall-clock observer only.
  Builder& wall_observer(CampaignObserver* value) {
    options_.telemetry.wall_observer = value;
    return *this;
  }
  /// Convenience: fixed strategy seed only (receipt campaigns).
  Builder& strategy_seed(std::uint64_t value) {
    options_.determinism.strategy_seed = value;
    return *this;
  }
  /// Convenience: warm-start UNSAT seeding only.
  Builder& unsat_seed(const std::vector<std::uint64_t>* value) {
    options_.caching.unsat_seed = value;
    return *this;
  }
  Builder& determinism(Determinism value) {
    options_.determinism = std::move(value);
    return *this;
  }
  /// Convenience: seeds only.
  Builder& seeds(std::vector<std::uint64_t> value) {
    options_.determinism.seeds = std::move(value);
    return *this;
  }
  /// Convenience: implementation axis only ("" = blueprints as authored;
  /// a registry id re-homes every node of every scenario onto that engine).
  Builder& implementations(std::vector<std::string> value) {
    options_.determinism.implementations = std::move(value);
    return *this;
  }
  Builder& deadline(StopToken::Clock::time_point value) {
    options_.deadline = value;
    return *this;
  }
  /// Deadline relative to now — the usual way to time-box a soak.
  Builder& time_box(std::chrono::milliseconds duration) {
    options_.deadline = StopToken::Clock::now() + duration;
    return *this;
  }

  /// Validates and returns the options, or the first rejection
  /// (code "campaign.options.*").
  [[nodiscard]] util::Result<CampaignOptions> build() const;

 private:
  CampaignOptions options_;
};

/// What a run produced — complete, or well-formed-partial when cancelled.
/// Extends MatrixResult (cells in canonical order, completed cells'
/// deduplicated faults, cache/pool stats, cells_completed, stopped) rather
/// than mirroring it field by field, so the facade can never silently drop
/// a future MatrixResult field. For every completed cell the fault bytes
/// are identical to an uncancelled run's at any worker count.
struct CampaignResult : MatrixResult {
  double wall_ms = 0.0;
  /// This run's metrics traffic: the global registry snapshot at run end,
  /// delta'd against the snapshot at run start (counters and histogram
  /// buckets are per-run; gauges are current levels).
  obs::MetricsSnapshot telemetry;
};

class Campaign {
 public:
  /// `options` should come from CampaignOptions::builder() (validated);
  /// hand-rolled options are taken as given. The campaign owns its pool,
  /// bootstrap cache and per-scenario prototypes for its lifetime, so
  /// repeat run() calls (soaks) reuse arenas and cached bootstraps.
  Campaign(std::vector<ScenarioSpec> scenarios, CampaignOptions options);

  /// Runs every cell, streaming events to `observer` (may be null) in
  /// canonical order as cells land, honoring `stop` and the options
  /// deadline between cells/episodes/clones. Blocks until all cells
  /// completed or the remainder was cancelled.
  [[nodiscard]] CampaignResult run(CampaignObserver* observer = nullptr,
                                   StopToken stop = {});

  [[nodiscard]] std::size_t cell_count() const noexcept { return matrix_.cell_count(); }
  [[nodiscard]] const CampaignOptions& options() const noexcept { return options_; }
  /// The bootstrap cache this campaign consults (owned unless an external
  /// one was supplied) — soak loops may trim() it between runs.
  [[nodiscard]] LiveStateCache& live_cache() noexcept { return *live_cache_; }
  [[nodiscard]] ExplorePool& pool() noexcept { return *pool_; }
  /// The matrix underneath — svc::SoakService maps its prototypes back to
  /// stable (scenario, implementation) names when persisting warm state.
  [[nodiscard]] const ScenarioMatrix& matrix() const noexcept { return matrix_; }

 private:
  CampaignOptions options_;
  LiveStateCache owned_live_cache_;
  LiveStateCache* live_cache_ = nullptr;  ///< external or &owned_live_cache_
  std::unique_ptr<ExplorePool> owned_pool_;  ///< null when external
  ExplorePool* pool_ = nullptr;
  ScenarioMatrix matrix_;
};

}  // namespace dice::explore
