#include "explore/ledger.hpp"

#include <algorithm>

namespace dice::explore {

FaultLedger::FaultLedger(std::size_t shards) {
  shards_.reserve(std::max<std::size_t>(shards, 1));
  for (std::size_t i = 0; i < std::max<std::size_t>(shards, 1); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

template <typename Report>
bool FaultLedger::insert(std::uint64_t key, std::uint64_t priority, Report&& report) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    shard.entries.emplace(key, Entry{std::forward<Report>(report), priority});
    return true;
  }
  if (priority < it->second.priority) {
    // A lower-priority (earlier in serial order) duplicate replaces the
    // incumbent so the surviving evidence is scheduling-independent.
    it->second = Entry{std::forward<Report>(report), priority};
  }
  return false;
}

bool FaultLedger::record(core::FaultReport report, std::uint64_t priority,
                         std::uint64_t key_salt) {
  const std::uint64_t key = salted_fault_key(core::fault_key(report), key_salt);
  return insert(key, priority, std::move(report));
}

std::size_t FaultLedger::record_all(std::vector<core::FaultReport>&& reports,
                                    std::uint64_t base_priority, std::uint64_t key_salt) {
  std::size_t fresh = 0;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (record(std::move(reports[i]), base_priority + i, key_salt)) ++fresh;
  }
  return fresh;
}

std::size_t FaultLedger::record_all(const std::vector<core::FaultReport>& reports,
                                    std::uint64_t base_priority, std::uint64_t key_salt) {
  // Copy-on-land: duplicates (the common case in long soaks) never copy.
  std::size_t fresh = 0;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const std::uint64_t key = salted_fault_key(core::fault_key(reports[i]), key_salt);
    if (insert(key, base_priority + i, reports[i])) ++fresh;
  }
  return fresh;
}

bool FaultLedger::contains(std::uint64_t fault_key, std::uint64_t key_salt) const {
  const std::uint64_t key = salted_fault_key(fault_key, key_salt);
  const Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.entries.contains(key);
}

std::size_t FaultLedger::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->entries.size();
  }
  return total;
}

std::vector<core::FaultReport> FaultLedger::snapshot_sorted() const {
  std::vector<Entry> entries;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [key, entry] : shard->entries) entries.push_back(entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.priority < b.priority; });
  std::vector<core::FaultReport> reports;
  reports.reserve(entries.size());
  for (Entry& entry : entries) reports.push_back(std::move(entry.report));
  return reports;
}

void FaultLedger::clear() {
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->entries.clear();
  }
}

}  // namespace dice::explore
