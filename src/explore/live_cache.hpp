// LiveStateCache: bootstrap each (prototype, seed) live system ONCE.
//
// Every ScenarioMatrix cell used to replay its live system's bootstrap from
// scratch — start() plus up to bootstrap_events of convergence — even when
// another cell of the same (scenario, seed) had already converged the exact
// same deterministic state. This cache closes that gap the same way the
// clone pipeline's PreparedSnapshot closed the per-clone decode gap: the
// first cell of a key converges, captures a PreparedLiveState (typed
// checkpoints + frame schedule + simulator resume point), and publishes it;
// every later cell System::resume_from's it in microseconds.
//
// Once-latch: each key owns a latch held for the duration of the first
// caller's compute (the bootstrap + capture). Concurrent workers landing on
// the same key BLOCK on the latch instead of duplicating the bootstrap,
// then wake to the published state. Workers on different keys never
// contend beyond the map lock.
//
// Lifetime: entries and states are shared_ptr-published, so trim/clear may
// drop the cache's reference at any time — holders (including workers
// still blocked on a latch) keep theirs alive until they are done,
// mirroring the SnapshotStore prepared-entry contract.
//
// Uncacheable keys: a compute may return nullptr (non-quiescent bootstrap —
// restoring a churning cut would re-order its in-flight frames, and
// verdicts must be scheduling-independent). The null result is remembered
// so later callers fall back to their own bootstrap immediately, outside
// any latch.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "snapshot/live_state.hpp"
#include "util/hash.hpp"

namespace dice::explore {

class LiveStateCache {
 public:
  /// Default LRU bound. Entries are small (shared_ptrs to typed state),
  /// but a long multi-matrix soak over generated scenarios would otherwise
  /// accumulate keys forever; generous so ordinary matrices never evict.
  static constexpr std::size_t kDefaultMaxEntries = 4096;

  /// `max_entries` bounds the cache LRU-style: inserting a fresh key past
  /// the bound evicts the least-recently-used RESOLVED entry (in-flight
  /// computes are never evicted — their keys are bounded by worker count).
  /// Like SnapshotStore::trim, eviction only drops the cache's reference:
  /// holders of returned states keep theirs alive.
  explicit LiveStateCache(std::size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}
  /// Cache identity: the shared SystemPrototype (pointer identity — the
  /// matrix builds exactly one per scenario), the scenario seed, the
  /// bootstrap budget (a different budget converges to a different state
  /// on non-quiescing topologies), and the effective oscillation flip-exit
  /// threshold (0 = exit disabled; a different threshold stops a churning
  /// bootstrap at a different state). The key HOLDS the prototype: as long
  /// as an entry lives, the address cannot be recycled by a later
  /// prototype, so pointer identity stays sound even for a cache shared
  /// across matrix lifetimes.
  struct Key {
    std::shared_ptr<const void> prototype;
    std::uint64_t seed = 0;
    std::size_t bootstrap_events = 0;
    std::uint32_t flip_exit = 0;
    [[nodiscard]] bool operator==(const Key& other) const noexcept {
      return prototype.get() == other.prototype.get() && seed == other.seed &&
             bootstrap_events == other.bootstrap_events && flip_exit == other.flip_exit;
    }
  };

  struct Stats {
    std::uint64_t hits = 0;         ///< served from a published state
    std::uint64_t misses = 0;       ///< this caller ran the compute
    std::uint64_t uncacheable = 0;  ///< lookups resolved to a null (non-quiescent) key
    std::uint64_t evictions = 0;    ///< entries dropped by the LRU bound or trim()
  };

  using Compute = std::function<std::shared_ptr<const snapshot::PreparedLiveState>()>;

  struct Lookup {
    std::shared_ptr<const snapshot::PreparedLiveState> state;  ///< null: uncacheable key
    bool hit = false;  ///< true: resolved by an earlier compute (state may be null)
  };

  /// Returns the key's published state, invoking `compute` under the key's
  /// once-latch when it has never resolved. Exactly one caller per key ever
  /// computes; concurrent same-key callers block until it publishes.
  [[nodiscard]] Lookup get_or_compute(const Key& key, const Compute& compute);

  /// The published state, or nullptr when the key never resolved (or was
  /// trimmed, or resolved uncacheable). Never blocks on a latch.
  [[nodiscard]] std::shared_ptr<const snapshot::PreparedLiveState> find(const Key& key) const;

  /// One resolved, non-null entry: the key and its published state.
  struct ResolvedEntry {
    Key key;
    std::shared_ptr<const snapshot::PreparedLiveState> state;
  };
  /// Snapshot of every RESOLVED entry with a non-null state (uncacheable
  /// keys and in-flight computes are skipped). Never blocks on a latch;
  /// entry order is unspecified — callers wanting stable bytes sort by
  /// their own stable key (svc::ArtifactStore does). Does not touch LRU
  /// recency: harvesting for persistence must not distort eviction.
  [[nodiscard]] std::vector<ResolvedEntry> resolved_entries() const;

  /// Atomically swaps `key`'s published state for `state` (non-null). The
  /// old Entry object is never mutated — resolved entries are published
  /// immutable and read latch-free, so the swap installs a whole new
  /// resolved Entry in the map slot; holders of the old state keep it
  /// alive. No-op when the key is absent (trimmed meanwhile) or its compute
  /// is still in flight (the computing worker will publish its own result;
  /// racing it would lose an in-flight latch queue). Returns true when the
  /// swap happened. Used by svc::SoakService to promote raw-only primed
  /// entries to their decoded form after the first warm round.
  bool replace(const Key& key, std::shared_ptr<const snapshot::PreparedLiveState> state);

  /// Drops every entry. Holders of returned states (and workers blocked on
  /// a latch) are unaffected; the next lookup per key recomputes.
  void clear();

  /// Drops least-recently-used resolved entries until at most `keep`
  /// remain (mirrors SnapshotStore::trim). Safe while entries are held —
  /// shared_ptr publication means a trim never invalidates a holder, and
  /// in-flight computes are skipped entirely.
  void trim(std::size_t keep);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t max_entries() const noexcept { return max_entries_; }
  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    std::mutex latch;  ///< held by the first caller for the whole compute
    /// Release-published after `state` is written; `state` never changes
    /// again, so resolved readers take no latch (hits stay concurrent and
    /// find() never confuses "being computed" with "mid-hit").
    std::atomic<bool> resolved{false};
    std::shared_ptr<const snapshot::PreparedLiveState> state;
    /// LRU clock value of the entry's last lookup. Touched only under the
    /// cache's map mutex (never the latch), unlike the fields above.
    std::uint64_t last_used = 0;
  };
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& key) const noexcept {
      std::uint64_t h =
          util::hash_finalize(reinterpret_cast<std::uintptr_t>(key.prototype.get()));
      h = util::hash_finalize(h ^ key.seed);
      h = util::hash_finalize(h ^ key.bootstrap_events);
      return static_cast<std::size_t>(util::hash_finalize(h ^ key.flip_exit));
    }
  };

  /// Evicts LRU resolved entries until the map holds at most `max`.
  /// Requires mutex_ held. May leave the map above `max` when everything
  /// beyond it is an in-flight compute.
  void evict_locked(std::size_t max);

  mutable std::mutex mutex_;  ///< guards the map, stats and LRU clock, never a compute
  std::unordered_map<Key, std::shared_ptr<Entry>, KeyHash> entries_;
  Stats stats_;
  std::size_t max_entries_ = kDefaultMaxEntries;
  mutable std::uint64_t lru_clock_ = 0;  ///< find() bumps recency too
};

}  // namespace dice::explore
