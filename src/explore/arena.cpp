#include "explore/arena.hpp"

namespace dice::explore {

core::System* CloneArena::acquire(
    const std::shared_ptr<const core::SystemPrototype>& prototype,
    const snapshot::PreparedSnapshot& prepared, bool& reused) {
  ++stats_.acquires;
  if (system_ == nullptr || prototype_.get() != prototype.get()) {
    prototype_ = prototype;
    system_ = std::make_unique<core::System>(prototype);
    ++stats_.rebuilds;
    reused = false;
  } else {
    ++stats_.reuses;
    reused = true;
  }
  if (auto status = system_->reset_from(prepared); !status) {
    clear();
    return nullptr;
  }
  return system_.get();
}

}  // namespace dice::explore
