#include "explore/arena.hpp"

#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace dice::explore {

namespace {

struct ArenaMetrics {
  obs::Counter& acquires;
  obs::Counter& reuses;
  obs::Counter& rebuilds;
};

[[nodiscard]] ArenaMetrics& arena_metrics() {
  static ArenaMetrics metrics{
      obs::MetricsRegistry::global().counter(obs::names::kArenaAcquires),
      obs::MetricsRegistry::global().counter(obs::names::kArenaReuses),
      obs::MetricsRegistry::global().counter(obs::names::kArenaRebuilds)};
  return metrics;
}

}  // namespace

core::System* CloneArena::acquire(
    const std::shared_ptr<const core::SystemPrototype>& prototype,
    const snapshot::PreparedSnapshot& prepared, bool& reused) {
  ArenaMetrics& metrics = arena_metrics();
  ++stats_.acquires;
  metrics.acquires.add();
  if (system_ == nullptr || prototype_.get() != prototype.get()) {
    prototype_ = prototype;
    system_ = std::make_unique<core::System>(prototype);
    ++stats_.rebuilds;
    metrics.rebuilds.add();
    reused = false;
  } else {
    ++stats_.reuses;
    metrics.reuses.add();
    reused = true;
  }
  if (auto status = system_->reset_from(prepared); !status) {
    clear();
    return nullptr;
  }
  return system_.get();
}

}  // namespace dice::explore
