#include "explore/campaign.hpp"

#include <chrono>
#include <utility>

#include "bgp/node_impl.hpp"
#include "obs/names.hpp"

namespace dice::explore {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] MatrixOptions lower(const CampaignOptions& options,
                                  LiveStateCache* live_cache) {
  MatrixOptions lowered = options.to_matrix_options();
  lowered.live_cache = live_cache;
  return lowered;
}

}  // namespace

CampaignOptions::Builder CampaignOptions::builder() { return Builder{}; }

util::Status CampaignOptions::validate() const {
  if (strategies.empty()) {
    return util::make_error("campaign.options.no_strategies",
                            "at least one input strategy is required");
  }
  if (determinism.seeds.empty()) {
    return util::make_error("campaign.options.no_seeds",
                            "at least one seed is required");
  }
  if (determinism.implementations.empty()) {
    return util::make_error("campaign.options.no_implementations",
                            "at least one implementation-axis entry is required "
                            "(\"\" = blueprints as authored)");
  }
  for (const std::string& impl : determinism.implementations) {
    // "" is the as-authored passthrough; anything else must resolve in the
    // engine registry NOW, not when the first cell of that axis boots.
    if (!impl.empty() && !bgp::NodeImplementationRegistry::instance().contains(impl)) {
      return util::make_error("campaign.options.unknown_implementation",
                              "no node implementation registered under id '" +
                                  impl + "'");
    }
  }
  if (budgets.episodes_per_cell == 0) {
    return util::make_error("campaign.options.zero_episodes",
                            "episodes_per_cell must be >= 1");
  }
  if (budgets.inputs_per_episode == 0) {
    return util::make_error("campaign.options.zero_inputs",
                            "inputs_per_episode must be >= 1");
  }
  if (budgets.bootstrap_events == 0) {
    return util::make_error("campaign.options.zero_bootstrap_budget",
                            "bootstrap_events must be >= 1");
  }
  if (budgets.clone_event_budget == 0) {
    return util::make_error("campaign.options.zero_clone_budget",
                            "clone_event_budget must be >= 1");
  }
  if (parallelism.workers == 0 && parallelism.pool == nullptr) {
    return util::make_error("campaign.options.zero_workers",
                            "workers must be >= 1 (or supply an external pool)");
  }
  if (caching.live_cache_max_entries == 0) {
    return util::make_error("campaign.options.zero_cache_bound",
                            "live_cache_max_entries must be >= 1");
  }
  if (telemetry.progress_every_cells == 0) {
    return util::make_error("campaign.options.zero_progress_cadence",
                            "progress_every_cells must be >= 1");
  }
  if (deadline.has_value() && *deadline <= StopToken::Clock::now()) {
    return util::make_error("campaign.options.deadline_in_past",
                            "the campaign deadline has already passed");
  }
  return util::Status::success();
}

util::Result<CampaignOptions> CampaignOptions::Builder::build() const {
  if (const util::Status status = options_.validate(); !status.ok()) {
    return status.error();
  }
  return options_;
}

core::DiceOptions CampaignOptions::to_dice_options() const {
  core::DiceOptions dice;
  dice.inputs_per_episode = budgets.inputs_per_episode;
  dice.clone_event_budget = budgets.clone_event_budget;
  dice.clone_time_budget = budgets.clone_time_budget;
  dice.include_baseline_clone = budgets.include_baseline_clone;
  dice.oscillation_threshold = determinism.oscillation_threshold;
  dice.parallelism = 1;  // never a private pool; the matrix wires the shared one
  dice.rng_seed = determinism.rng_seed;
  dice.prepared_clones = caching.prepared_clones;
  dice.delta_snapshots = caching.delta_snapshots;
  dice.oscillation_early_exit = determinism.oscillation_early_exit;
  dice.bootstrap_early_exit = determinism.bootstrap_early_exit;
  return dice;
}

MatrixOptions CampaignOptions::to_matrix_options() const {
  MatrixOptions matrix;
  matrix.strategies = strategies;
  matrix.seeds = determinism.seeds;
  matrix.implementations = determinism.implementations;
  matrix.episodes_per_cell = budgets.episodes_per_cell;
  matrix.bootstrap_events = budgets.bootstrap_events;
  matrix.dice = to_dice_options();
  matrix.share_solver_cache = caching.share_solver_cache;
  matrix.live_state_cache = caching.live_state_cache;
  matrix.live_cache = caching.live_cache;
  matrix.unsat_seed = caching.unsat_seed;
  matrix.strategy_seed = determinism.strategy_seed;
  matrix.nested_parallelism = parallelism.nested;
  matrix.progress_every_cells = telemetry.progress_every_cells;
  return matrix;
}

Campaign::Campaign(std::vector<ScenarioSpec> scenarios, CampaignOptions options)
    : options_(std::move(options)),
      owned_live_cache_(options_.caching.live_cache_max_entries),
      live_cache_(options_.caching.live_cache != nullptr ? options_.caching.live_cache
                                                         : &owned_live_cache_),
      owned_pool_(options_.parallelism.pool != nullptr
                      ? nullptr
                      : std::make_unique<ExplorePool>(options_.parallelism.workers)),
      pool_(options_.parallelism.pool != nullptr ? options_.parallelism.pool
                                                 : owned_pool_.get()),
      matrix_(std::move(scenarios), lower(options_, live_cache_)) {}

CampaignResult Campaign::run(CampaignObserver* observer, StopToken stop) {
  StopToken token = stop;
  if (options_.deadline.has_value()) token = token.with_deadline(*options_.deadline);

  static obs::Gauge& running_gauge =
      obs::MetricsRegistry::global().gauge(obs::names::kCampaignsRunning);
  running_gauge.add();
  // One run, one trace: reset the caller's sink so a reused Trace never
  // mixes two runs' cell ids in one canonical section.
  if (options_.telemetry.trace != nullptr) options_.telemetry.trace->clear();
  const obs::MetricsSnapshot before = obs::MetricsRegistry::global().snapshot();

  const auto start = Clock::now();
  CampaignResult result;
  static_cast<MatrixResult&>(result) =
      matrix_.run(*pool_, RunControl{observer, token, options_.telemetry.trace,
                                     options_.telemetry.wall_observer});
  result.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  result.telemetry = obs::MetricsRegistry::global().snapshot().delta_since(before);
  running_gauge.sub();
  return result;
}

}  // namespace dice::explore
