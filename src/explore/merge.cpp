#include "explore/merge.hpp"

#include <algorithm>
#include <cassert>

namespace dice::explore {

CellMerger::CellMerger(std::vector<CellResult>* cells, Options options)
    : cells_(cells), options_(options) {
  assert(cells_ != nullptr);
  if (options_.progress_every_cells == 0) options_.progress_every_cells = 1;
  done_.assign(cells_->size(), 0);
  if (options_.observer != nullptr) stash_.resize(cells_->size());
}

CellDescriptor CellMerger::descriptor(std::size_t index) const {
  const CellResult& cell = (*cells_)[index];
  return CellDescriptor{index, cell.scenario, to_string(cell.strategy), cell.seed,
                        cell.implementation};
}

void CellMerger::record_faults(std::size_t index,
                               const std::vector<core::FaultReport>& faults) {
  // 32-bit priority bands: a cell recording 2^32 faults would bleed into
  // the next cell's band and corrupt serial-order dedup.
  assert(faults.size() < (std::uint64_t{1} << 32));
  ledger_.record_all(faults, static_cast<std::uint64_t>(index) << 32,
                     /*key_salt=*/index + 1);
  // The stash slot is owned by this cell's producer until finish_cell's
  // mutex publishes it to the flusher — no lock needed here.
  if (options_.observer != nullptr) stash_[index] = faults;
}

void CellMerger::finish_cell(std::size_t index) {
  const std::lock_guard<std::mutex> lock(mutex_);
  done_[index] = 1;
  flush_locked();
}

bool CellMerger::finished(std::size_t index) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return done_[index] != 0;
}

void CellMerger::finish_remaining() {
  const std::lock_guard<std::mutex> lock(mutex_);
  bool any = false;
  for (std::size_t i = 0; i < done_.size(); ++i) {
    if (done_[i] == 0) {
      done_[i] = 1;
      any = true;
    }
  }
  if (any) flush_locked();
}

void CellMerger::flush_locked() {
  while (next_ < done_.size() && done_[next_] != 0) {
    const std::size_t i = next_++;
    // The canonical flush order doubles as the trace's canonical cell
    // order (the flush mutex serializes these calls).
    if (options_.trace != nullptr) {
      options_.trace->cell_flushed(static_cast<std::uint32_t>(i),
                                   (*cells_)[i].completed);
    }
    if (options_.observer == nullptr) continue;
    const CellDescriptor desc = descriptor(i);
    options_.observer->on_cell_start(desc);
    for (const core::FaultReport& fault : stash_[i]) {
      options_.observer->on_fault(desc, fault);
    }
    options_.observer->on_cell_done(desc, (*cells_)[i]);
    streamed_faults_ += stash_[i].size();
    // Cadenced progress: every Nth flushed cell, plus always the last —
    // a coarser cadence must still report the final counts.
    if (next_ % options_.progress_every_cells == 0 || next_ == done_.size()) {
      options_.observer->on_progress(CampaignProgress{
          next_, done_.size(), streamed_faults_, options_.stop.stop_requested()});
    }
    // Streamed = done with the copy: release it now rather than holding
    // every cell's duplicate fault list until the whole run returns.
    std::vector<core::FaultReport>().swap(stash_[i]);
  }
}

std::vector<core::FaultReport> CellMerger::canonical_faults() const {
  return ledger_.snapshot_sorted();
}

}  // namespace dice::explore
