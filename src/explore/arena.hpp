// CloneArena: one reusable shadow System per worker.
//
// The legacy clone path paid O(construct + decode) for every CloneTask:
// build a full System from the blueprint, then re-parse every node
// checkpoint from raw bytes. With PreparedSnapshot the decode happens once
// per snapshot; the arena removes the construction too — each worker keeps
// a single System alive and System::reset_from re-seeds it between tasks
// (and, in ScenarioMatrix, between cells that share a SystemPrototype).
//
// Thread-safety: none by design. An arena belongs to exactly one worker at
// a time — ExplorePool owns one per worker thread, the orchestrator's
// serial path owns its own, and ScenarioMatrix hands pool arenas to the
// cell bodies running on those same workers.
#pragma once

#include <cstdint>
#include <memory>

#include "dice/system.hpp"

namespace dice::explore {

class CloneArena {
 public:
  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t reuses = 0;   ///< acquires served without constructing a System
    std::uint64_t rebuilds = 0; ///< constructions (first use or prototype switch)
  };

  /// Returns the arena's System reset to `prepared`'s state, constructing
  /// one first when the arena is empty or was last used with a different
  /// prototype (ScenarioMatrix reuses arenas across cells; same prototype
  /// pointer = reusable). `reused` reports which path was taken. Returns
  /// nullptr when the reset fails — the arena drops its (possibly half-
  /// seeded) System so the next acquire rebuilds from scratch.
  [[nodiscard]] core::System* acquire(
      const std::shared_ptr<const core::SystemPrototype>& prototype,
      const snapshot::PreparedSnapshot& prepared, bool& reused);

  /// Drops the held System (tests; memory pressure between soaks).
  void clear() noexcept {
    system_.reset();
    prototype_.reset();
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  std::shared_ptr<const core::SystemPrototype> prototype_;
  std::unique_ptr<core::System> system_;
  Stats stats_;
};

}  // namespace dice::explore
