#include "explore/solver_cache.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace dice::explore {

namespace {

struct SolverCacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& stores;
};

[[nodiscard]] SolverCacheMetrics& solver_cache_metrics() {
  static SolverCacheMetrics metrics{
      obs::MetricsRegistry::global().counter(obs::names::kSolverCacheHits),
      obs::MetricsRegistry::global().counter(obs::names::kSolverCacheMisses),
      obs::MetricsRegistry::global().counter(obs::names::kSolverCacheStores)};
  return metrics;
}

}  // namespace

SolverCache::SolverCache(std::size_t shards) {
  const std::size_t count = std::max<std::size_t>(shards, 1);
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) shards_.push_back(std::make_unique<Shard>());
}

bool SolverCache::lookup(std::uint64_t key, std::optional<util::Bytes>& result) {
  Shard& shard = shard_for(key);
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (auto it = shard.entries.find(key); it != shard.entries.end()) {
      result = it->second;
      hits_.fetch_add(1, std::memory_order_relaxed);
      solver_cache_metrics().hits.add();
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  solver_cache_metrics().misses.add();
  return false;
}

void SolverCache::store(std::uint64_t key, const std::optional<util::Bytes>& result) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  // First write wins: both a model and an UNSAT proof are sound, and
  // keeping the incumbent makes concurrent racing stores commutative.
  shard.entries.try_emplace(key, result);
  stores_.fetch_add(1, std::memory_order_relaxed);
  solver_cache_metrics().stores.add();
}

SolverCache::Stats SolverCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.stores = stores_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    stats.entries += shard->entries.size();
    for (const auto& [key, value] : shard->entries) {
      if (value.has_value()) ++stats.sat_entries;
    }
  }
  return stats;
}

std::size_t SolverCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->entries.size();
  }
  return total;
}

std::vector<std::uint64_t> SolverCache::unsat_keys() const {
  std::vector<std::uint64_t> keys;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [key, value] : shard->entries) {
      if (!value.has_value()) keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

void SolverCache::seed_unsat(const std::vector<std::uint64_t>& keys) {
  for (const std::uint64_t key : keys) {
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries.try_emplace(key, std::nullopt);
  }
}

void SolverCache::clear() {
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->entries.clear();
  }
}

}  // namespace dice::explore
