// ExplorePool: the parallel clone-execution engine behind DiCE episodes.
//
// The paper's Figure 2 loop explores inputs over cloned systems that
// "share nothing" with the live deployment — clone runs are therefore
// embarrassingly parallel. The pool owns a fixed set of worker threads,
// each with its own deque of task indices; a batch is distributed
// round-robin and idle workers steal from the back of their victims'
// deques, so skewed task costs (one clone hitting a near-oscillation,
// the rest quiescing instantly) still saturate every worker.
//
// Determinism contract: a task's behavior depends only on the task itself
// — the immutable snapshot, the pre-generated input, and (should a task
// ever need randomness) its own forked Rng stream, never a worker-owned
// one — and results land in a slot indexed by task id, so the outcome of
// a batch is bit-identical for 1, 2 or N workers regardless of stealing
// order.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dice/report.hpp"
#include "dice/system.hpp"
#include "explore/arena.hpp"
#include "util/rng.hpp"

namespace dice::explore {

/// One unit of exploration work: clone the snapshot, subject the input,
/// converge, check. `index` doubles as the task's result slot and as the
/// priority that reproduces serial encounter order during fault merging.
struct CloneTask {
  std::size_t index = 0;
  const bgp::SystemBlueprint* blueprint = nullptr;
  const snapshot::Snapshot* snap = nullptr;  ///< immutable, shared by all workers
  /// Decode-once state (+ the prototype to build arena Systems from). When
  /// both are set and the executing worker has an arena, the clone is an
  /// arena reset instead of a construct+re-decode; results are
  /// bit-identical either way. Shared_ptrs: a task in flight keeps the
  /// prepared state alive even if the store trims it mid-batch.
  std::shared_ptr<const core::SystemPrototype> prototype;
  std::shared_ptr<const snapshot::PreparedSnapshot> prepared;
  util::Bytes input;                         ///< UPDATE body; empty for the baseline clone
  bool baseline = false;                     ///< no-input clone checking current state
  sim::NodeId explorer = sim::kInvalidNode;
  sim::NodeId inject_from = sim::kInvalidNode;  ///< kInvalidNode: nothing to inject
  std::uint64_t episode = 0;
  /// Per-task deterministic stream (util::Rng::fork(task index)). Clone
  /// execution itself is deterministic and draws nothing from it today;
  /// it exists so any future randomized task behavior (perturbed event
  /// timing, sampled checks) stays scheduling-independent by construction
  /// — never reach for a worker-owned or shared generator instead.
  util::Rng rng;
  std::size_t event_budget = 200'000;
  sim::Time time_budget = 120 * sim::kSecond;
  /// When > 0: stop the clone run as soon as any prefix's best-route flip
  /// count reaches this (DiceOptions::oscillation_early_exit). 0 = run the
  /// full event budget.
  std::uint32_t oscillation_exit_flips = 0;
};

/// What one clone run produced. Faults are raw (pre-deduplication); the
/// caller merges them through a FaultLedger keyed by task index.
struct CloneOutcome {
  bool ran = false;       ///< clone reconstruction succeeded
  bool quiesced = false;  ///< converged within budgets
  bool reused = false;    ///< served by an arena reset (no System construction)
  bool early_exit = false;  ///< terminated by the oscillation early-exit
  std::vector<core::FaultReport> faults;
  double clone_ms = 0.0;
  double explore_ms = 0.0;
  double check_ms = 0.0;
};

/// Property checks over a finished clone: (system, task, quiesced) -> faults.
/// The orchestrator binds this to Orchestrator::check_system.
using CheckFn = std::function<std::vector<core::FaultReport>(
    core::System&, const CloneTask&, bool quiesced)>;

/// Executes one CloneTask end to end (clone -> inject -> converge -> check).
/// Pure with respect to shared state: reads the immutable snapshot and
/// blueprint, owns everything else (the arena, when given, must belong to
/// the calling worker). Safe to call from any worker.
[[nodiscard]] CloneOutcome run_clone_task(const CloneTask& task, const CheckFn& check,
                                          CloneArena* arena = nullptr);

class ExplorePool {
 public:
  /// workers <= 1 builds a threadless pool: run_batch executes inline on
  /// the caller (the `workers=1` compatibility path — no thread is ever
  /// spawned, so single-worker behavior is exactly the serial loop).
  explicit ExplorePool(std::size_t workers);
  ~ExplorePool();
  ExplorePool(const ExplorePool&) = delete;
  ExplorePool& operator=(const ExplorePool&) = delete;

  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }

  /// Runs fn(task_index, worker_id) for every index in [0, count) and
  /// blocks until all complete. Indices are dealt round-robin onto the
  /// worker deques; workers drain their own deque front-to-back and steal
  /// from the back of the busiest victim when empty. One batch at a time;
  /// not reentrant.
  void run_batch(std::size_t count,
                 const std::function<void(std::size_t task, std::size_t worker)>& fn);

  /// Typed convenience: executes every CloneTask and returns outcomes in
  /// task-index order (scheduling-independent). Tasks carrying prepared
  /// state run on the executing worker's clone arena.
  [[nodiscard]] std::vector<CloneOutcome> explore(const std::vector<CloneTask>& tasks,
                                                  const CheckFn& check);

  /// Cancellation drain: removes every still-queued task of the current
  /// batch from all worker deques and returns how many were dropped. Tasks
  /// already executing finish normally; dropped ones never run (run_batch
  /// still returns once every worker acks, so the caller must treat
  /// never-ran indices as skipped). Safe to call from a worker inside the
  /// batch — this is how a cell that observes a StopToken stops the whole
  /// deal instead of letting W-1 peers dequeue doomed work. No-op on the
  /// threadless (workers <= 1) pool, whose inline loop polls the token
  /// through the task body itself.
  std::size_t drain();

  /// The worker's private clone arena. Only the worker executing a task may
  /// touch its own arena during run_batch; between batches the caller may
  /// inspect stats or clear them.
  [[nodiscard]] CloneArena& arena(std::size_t worker) noexcept { return arenas_[worker]; }

  struct Stats {
    std::uint64_t batches = 0;
    std::uint64_t tasks_run = 0;
    std::uint64_t steals = 0;  ///< tasks executed by a non-owning worker
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct WorkerDeque {
    std::mutex mutex;
    std::deque<std::size_t> tasks;
  };

  void worker_loop(std::size_t worker_id);
  /// Pops the front of `worker_id`'s own deque, or steals from the back of
  /// the fullest victim. Returns false when every deque is empty.
  [[nodiscard]] bool next_task(std::size_t worker_id, std::size_t& task);

  std::size_t workers_ = 1;
  std::vector<std::unique_ptr<WorkerDeque>> deques_;
  std::vector<CloneArena> arenas_;  ///< one per worker, touched only by its owner
  std::vector<std::thread> threads_;

  std::mutex batch_mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  const std::function<void(std::size_t, std::size_t)>* batch_fn_ = nullptr;
  std::uint64_t batch_epoch_ = 0;
  std::size_t workers_done_ = 0;  ///< per-epoch acks; all must land before return
  bool shutdown_ = false;

  mutable std::mutex stats_mutex_;
  Stats stats_;
};

}  // namespace dice::explore
