// ExplorePool: the parallel execution engine behind the exploration stack —
// one GLOBAL worker budget shared by every layer that has work to fan out.
//
// The paper's Figure 2 loop explores inputs over cloned systems that
// "share nothing" with the live deployment — clone runs are therefore
// embarrassingly parallel. The pool owns a fixed set of worker threads,
// each with its own deque of tasks; a top-level batch (ScenarioMatrix
// cells) is distributed round-robin and idle workers steal from the back
// of their victims' deques, so skewed task costs (one clone hitting a
// near-oscillation, the rest quiescing instantly) still saturate every
// worker.
//
// Hierarchical task groups: run_batch is reentrant from inside a worker.
// A task that itself has parallel work (a matrix cell running an episode's
// clone batch) submits a CHILD group back into the same pool instead of
// demanding a dedicated pool slice; the submitting worker then helps —
// it executes its own group's tasks while waiting on the group's
// completion latch — and idle workers steal the children across cell
// boundaries. A 1-cell campaign on an 8-worker pool therefore keeps all 8
// workers busy: 7 steal the parked cell's clones.
//
// Steal policy: child tasks are pushed to the FRONT of the submitting
// worker's deque (depth-first: the owner drains its own episode before
// anything else), thieves take from the BACK of the fullest victim — so a
// thief prefers the coarsest work available (queued cells before another
// cell's clones) and takes clones exactly when nothing coarser is left.
//
// Determinism contract: a task's behavior depends only on the task itself
// — the immutable snapshot, the pre-generated input, and (should a task
// ever need randomness) its own forked Rng stream, never a worker-owned
// one — and results land in a slot indexed by task id, so the outcome of
// a batch is bit-identical for 1, 2 or N workers regardless of stealing
// order, nesting, or which worker executes which task. See
// docs/DETERMINISM.md for the full invariant checklist.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dice/report.hpp"
#include "dice/system.hpp"
#include "explore/arena.hpp"
#include "util/rng.hpp"

namespace dice::explore {

/// One unit of exploration work: clone the snapshot, subject the input,
/// converge, check. `index` doubles as the task's result slot and as the
/// priority that reproduces serial encounter order during fault merging.
struct CloneTask {
  std::size_t index = 0;
  const bgp::SystemBlueprint* blueprint = nullptr;
  const snapshot::Snapshot* snap = nullptr;  ///< immutable, shared by all workers
  /// Decode-once state (+ the prototype to build arena Systems from). When
  /// both are set and the executing worker has an arena, the clone is an
  /// arena reset instead of a construct+re-decode; results are
  /// bit-identical either way. Shared_ptrs: a task in flight keeps the
  /// prepared state alive even if the store trims it mid-batch.
  std::shared_ptr<const core::SystemPrototype> prototype;
  std::shared_ptr<const snapshot::PreparedSnapshot> prepared;
  util::Bytes input;                         ///< UPDATE body; empty for the baseline clone
  bool baseline = false;                     ///< no-input clone checking current state
  sim::NodeId explorer = sim::kInvalidNode;
  sim::NodeId inject_from = sim::kInvalidNode;  ///< kInvalidNode: nothing to inject
  std::uint64_t episode = 0;
  /// Per-task deterministic stream (util::Rng::fork(task index)). Clone
  /// execution itself is deterministic and draws nothing from it today;
  /// it exists so any future randomized task behavior (perturbed event
  /// timing, sampled checks) stays scheduling-independent by construction
  /// — never reach for a worker-owned or shared generator instead.
  util::Rng rng;
  std::size_t event_budget = 200'000;
  sim::Time time_budget = 120 * sim::kSecond;
  /// When > 0: stop the clone run as soon as any prefix's best-route flip
  /// count reaches this (DiceOptions::oscillation_early_exit). 0 = run the
  /// full event budget.
  std::uint32_t oscillation_exit_flips = 0;
};

/// What one clone run produced. Faults are raw (pre-deduplication); the
/// caller merges them through a FaultLedger keyed by task index.
struct CloneOutcome {
  bool ran = false;       ///< clone reconstruction succeeded
  bool quiesced = false;  ///< converged within budgets
  bool reused = false;    ///< served by an arena reset (no System construction)
  bool early_exit = false;  ///< terminated by the oscillation early-exit
  std::vector<core::FaultReport> faults;
  double clone_ms = 0.0;
  double explore_ms = 0.0;
  double check_ms = 0.0;
};

/// Property checks over a finished clone: (system, task, quiesced) -> faults.
/// The orchestrator binds this to Orchestrator::check_system.
using CheckFn = std::function<std::vector<core::FaultReport>(
    core::System&, const CloneTask&, bool quiesced)>;

/// Executes one CloneTask end to end (clone -> inject -> converge -> check).
/// Pure with respect to shared state: reads the immutable snapshot and
/// blueprint, owns everything else (the arena, when given, must belong to
/// the calling worker). Safe to call from any worker.
[[nodiscard]] CloneOutcome run_clone_task(const CloneTask& task, const CheckFn& check,
                                          CloneArena* arena = nullptr);

class ExplorePool {
 public:
  /// workers <= 1 builds a threadless pool: run_batch executes inline on
  /// the caller (the `workers=1` compatibility path — no thread is ever
  /// spawned, so single-worker behavior is exactly the serial loop; nested
  /// run_batch calls become plain nested loops).
  explicit ExplorePool(std::size_t workers);
  ~ExplorePool();
  ExplorePool(const ExplorePool&) = delete;
  ExplorePool& operator=(const ExplorePool&) = delete;

  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }

  /// Runs fn(task_index, worker_id) for every index in [0, count) and
  /// blocks until all complete.
  ///
  /// Called from OUTSIDE the pool (the matrix driver, a standalone
  /// orchestrator): the indices are dealt round-robin onto the worker
  /// deques and the caller sleeps on the batch's completion latch. One
  /// external batch at a time.
  ///
  /// Called from INSIDE a worker (reentrant — a cell submitting its
  /// episode's clone batch): the indices become a CHILD group pushed onto
  /// the calling worker's own deque front; the caller HELPS (executes its
  /// group's tasks) until the group latch opens, and idle workers steal
  /// the children across cell boundaries. Nesting depth is unbounded by
  /// design; helping is restricted to the awaited group, so stacks stay
  /// shallow.
  void run_batch(std::size_t count,
                 const std::function<void(std::size_t task, std::size_t worker)>& fn);

  /// Typed convenience: executes every CloneTask and returns outcomes in
  /// task-index order (scheduling-independent). Tasks carrying prepared
  /// state run on the executing worker's clone arena.
  [[nodiscard]] std::vector<CloneOutcome> explore(const std::vector<CloneTask>& tasks,
                                                  const CheckFn& check);

  /// Cancellation drain: removes every still-queued task — top-level AND
  /// child — from all worker deques and returns how many were dropped.
  /// Tasks already executing finish normally; dropped ones never run, and
  /// their groups' completion latches are credited, so every in-flight
  /// run_batch still returns (callers must treat never-ran indices as
  /// skipped/interrupted). Safe to call from a worker inside a batch —
  /// this is how a cell that observes a StopToken stops the whole deal,
  /// including peer cells' queued clones, instead of letting W-1 peers
  /// dequeue doomed work. No-op on the threadless (workers <= 1) pool,
  /// whose inline loop polls the token through the task body itself.
  std::size_t drain();

  /// The worker executing the current thread, or kNoWorker when the
  /// calling thread is not one of this pool's workers. What run_batch uses
  /// to tell a child submission from an external batch.
  static constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);
  [[nodiscard]] std::size_t current_worker() const noexcept;

  /// The worker's private clone arena. Only the worker executing a task may
  /// touch its own arena during run_batch; between batches the caller may
  /// inspect stats or clear them.
  [[nodiscard]] CloneArena& arena(std::size_t worker) noexcept { return arenas_[worker]; }

  struct Stats {
    std::uint64_t batches = 0;        ///< external (top-level) batches
    std::uint64_t child_batches = 0;  ///< nested submissions from inside workers
    std::uint64_t tasks_run = 0;
    std::uint64_t child_tasks = 0;  ///< tasks belonging to child groups
    std::uint64_t steals = 0;       ///< tasks executed by a non-owning worker
    std::uint64_t child_steals = 0; ///< the subset of steals that took child tasks
    /// Child tasks the submitting worker executed itself while waiting on
    /// its group latch. Conservation law: helped + child_steals ==
    /// child_tasks — a child leaves the queue exactly one of those two ways
    /// (or is drained and never runs).
    std::uint64_t helped = 0;
    /// Tasks executed per worker — the occupancy receipt: a 1-cell nested
    /// campaign on W workers should show more than one nonzero slot.
    std::vector<std::uint64_t> worker_tasks;
    /// Workers with at least one task executed (derived convenience).
    [[nodiscard]] std::size_t occupied_workers() const noexcept {
      std::size_t n = 0;
      for (const std::uint64_t tasks : worker_tasks) n += tasks != 0 ? 1 : 0;
      return n;
    }
  };
  [[nodiscard]] Stats stats() const;

 private:
  /// One submitted batch: the shared fn, the submitting worker (kNoWorker
  /// for external batches) and the completion latch. Lives on the
  /// submitter's stack for exactly the duration of its run_batch call —
  /// every task holds a pointer, and the latch (pending == 0) opens only
  /// after the last task's fn returned or the task was drained.
  struct TaskGroup {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t owner = kNoWorker;
    std::mutex mutex;
    std::condition_variable done;
    std::size_t pending = 0;  ///< guarded by mutex
  };
  struct Task {
    TaskGroup* group = nullptr;
    std::size_t index = 0;
  };
  struct WorkerDeque {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t worker_id);
  /// External-caller path: round-robin deal + sleep on the group latch.
  void run_external_batch(std::size_t count,
                          const std::function<void(std::size_t, std::size_t)>& fn);
  /// Worker path: push children onto own deque front, help, wait.
  void run_child_batch(std::size_t count,
                       const std::function<void(std::size_t, std::size_t)>& fn,
                       std::size_t worker_id);
  /// Pops the front of `worker_id`'s own deque, or steals from the back of
  /// the fullest victim (sets `stolen`). Returns false when every deque is
  /// empty.
  [[nodiscard]] bool next_task(std::size_t worker_id, Task& task, bool& stolen);
  /// Removes one still-queued task of `group` from the owner's deque
  /// (front-to-back). Children never migrate between deques — stealing
  /// executes immediately — so the owner's deque is the only place to look.
  [[nodiscard]] bool pop_group_task(TaskGroup& group, std::size_t worker_id, Task& task);
  /// Executes fn, credits the group latch, updates stats.
  void run_task(const Task& task, std::size_t worker_id, bool stolen, bool helped);
  /// Single-writer relaxed bump on a worker-owned stat slot (plain add in
  /// codegen; atomic storage only so stats() may read concurrently).
  static void bump(std::atomic<std::uint64_t>& cell, std::uint64_t n = 1) noexcept {
    cell.store(cell.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }
  /// Publishes `count` new queued tasks to sleeping workers.
  void announce_work();

  std::size_t workers_ = 1;
  std::vector<std::unique_ptr<WorkerDeque>> deques_;
  std::vector<CloneArena> arenas_;  ///< one per worker, touched only by its owner
  std::vector<std::thread> threads_;

  std::mutex pool_mutex_;              ///< guards shutdown_ + the sleep handshake
  std::condition_variable work_ready_;
  std::atomic<std::size_t> queued_{0};  ///< tasks sitting in deques (not in flight)
  bool shutdown_ = false;
  std::size_t inline_depth_ = 0;  ///< threadless-path nesting (single-threaded)

  /// Per-worker stat slots, each written ONLY by the worker that owns it
  /// (single-writer relaxed — see bump()), merged by stats(). Visibility to
  /// a batch submitter is given by the group-latch mutex: run_task bumps
  /// BEFORE crediting the latch, and the submitter reads stats() only after
  /// acquiring the latch mutex saw pending == 0.
  struct alignas(64) WorkerStats {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> child_tasks{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> child_steals{0};
    std::atomic<std::uint64_t> helped{0};
  };
  std::vector<WorkerStats> worker_stats_;  ///< one per worker
  /// Batch counters are cold (once per run_batch) and may race between an
  /// external submitter and workers submitting children: fetch_add.
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> child_batches_{0};
};

}  // namespace dice::explore
