// explore::CellMerger — the ONE canonical merge: a streaming reorder buffer
// plus the per-cell-salted FaultLedger discipline, shared by every surface
// that folds cells into a campaign-shaped result.
//
// Before this component the reorder buffer lived as a local struct inside
// ScenarioMatrix::run. Cross-process sharding (shard::ShardCoordinator)
// needs the IDENTICAL merge — same flush order, same ledger priorities,
// same per-cell salting, same progress cadence — or the byte-identical
// fault-set guarantee dies at the process boundary. Extracting it means
// there is exactly one implementation of the invariant instead of two
// copies that can drift:
//
//  * cells land in ANY order (wall-clock completion in the matrix, frame
//    arrival order under sharding); the observer stream is flushed in
//    CANONICAL cell order — a landed cell is held until every earlier cell
//    has landed, then flushed start -> fault* -> done (+ cadenced
//    progress);
//  * a completed cell's faults are recorded with priority
//    `index << 32 + encounter order` and key salt `index + 1` — the serial
//    order a single-process, single-worker run would produce — so
//    canonical_faults() is byte-identical no matter who executed the cell,
//    in which process, or when its result arrived;
//  * cells that never land (skipped by a stop token, lost with their
//    shard) are flushed as not-started by finish_remaining(): the stream
//    always covers every cell exactly once, and a cancelled or lossy merge
//    is well-formed-partial, never silently short.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "explore/control.hpp"
#include "explore/ledger.hpp"
#include "explore/matrix.hpp"
#include "obs/trace.hpp"

namespace dice::explore {

class CellMerger {
 public:
  struct Options {
    /// Canonical-order event sink; may be null. Callbacks are serialized
    /// under the merger's flush mutex.
    CampaignObserver* observer = nullptr;
    /// Span sink notified of every flush (Trace::cell_flushed) so the
    /// trace's canonical section mirrors the observer stream. May be null.
    obs::Trace* trace = nullptr;
    /// on_progress once every N flushed cells, and always for the final
    /// cell. 0 is treated as 1.
    std::size_t progress_every_cells = 1;
    /// Polled at each progress event for CampaignProgress::stop_requested.
    StopToken stop{};
  };

  /// `cells` is the canonical result array (one slot per cell, identity
  /// prefilled); the merger flushes descriptors and results straight out of
  /// it. Must outlive the merger; slot `i` must not be written after
  /// finish_cell(i).
  CellMerger(std::vector<CellResult>* cells, Options options);

  /// Records a COMPLETED cell's deduplicated faults (serial-encounter
  /// order) into the canonical ledger under the matrix discipline, and
  /// stashes a copy for the observer flush. Call at most once per cell,
  /// before finish_cell(index). Thread-safe against other cells; the
  /// ledger is lock-striped and the stash slot is owned by this cell until
  /// its flush.
  void record_faults(std::size_t index, const std::vector<core::FaultReport>& faults);

  /// Marks the cell landed and flushes the canonical prefix that is now
  /// decidable. Safe to call exactly once per cell, from any thread.
  void finish_cell(std::size_t index);

  /// Whether finish_cell(index) already ran. Only meaningful once
  /// concurrent producers have quiesced (the matrix post-batch sweep, the
  /// coordinator after its event loop).
  [[nodiscard]] bool finished(std::size_t index) const;

  /// Flushes every cell that never landed (stop-token skips, drained
  /// tasks, lost shards) so the stream covers all cells exactly once.
  /// Call after producers quiesced.
  void finish_remaining();

  /// The merged canonical fault list: ascending ledger priority — the
  /// byte-identical serial order.
  [[nodiscard]] std::vector<core::FaultReport> canonical_faults() const;

  [[nodiscard]] std::size_t cell_count() const noexcept { return done_.size(); }

 private:
  /// Flushes decidable cells. Caller holds mutex_.
  void flush_locked();
  [[nodiscard]] CellDescriptor descriptor(std::size_t index) const;

  std::vector<CellResult>* cells_;
  Options options_;
  FaultLedger ledger_;
  mutable std::mutex mutex_;
  std::vector<unsigned char> done_;
  /// Per-cell observer copies (allocated only when an observer is set);
  /// released as soon as the cell streams.
  std::vector<std::vector<core::FaultReport>> stash_;
  std::size_t next_ = 0;
  std::size_t streamed_faults_ = 0;
};

}  // namespace dice::explore
