// Campaign control vocabulary: cooperative cancellation and the streaming
// event sink shared by the Campaign facade and the layers underneath it
// (ScenarioMatrix, Orchestrator).
//
// StopToken is a cheap copyable handle (one shared atomic flag + an
// optional deadline). The exploration stack polls it at safe points only —
// between cells, between episodes, and between clones, NEVER mid-clone —
// so a cancelled run still finishes whole clones and keeps every completed
// cell's fault set byte-identical to an uncancelled run's. A default-
// constructed token never fires.
//
// CampaignObserver streams results while a run is in flight. Events are
// delivered in CANONICAL cell order (the cross-product order of the
// result), not wall-clock completion order: a reorder buffer inside the
// matrix run holds finished cells until every earlier cell has landed,
// then flushes start -> fault* -> done for each. The event sequence of an
// uncancelled run is therefore deterministic for any worker count.
// Callbacks are serialized (never concurrent) but may arrive on any worker
// thread; keep them fast — a slow observer backpressures cell completion.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string_view>

#include "dice/report.hpp"

namespace dice::explore {

/// Cancellation handle polled by the exploration stack. Copies share the
/// same flag; the deadline is per-token state combined via with_deadline.
class StopToken {
 public:
  using Clock = std::chrono::steady_clock;

  StopToken() = default;  ///< never fires

  /// True once the source requested stop or the deadline passed. An atomic
  /// load when no deadline is set; polled only between units of work.
  [[nodiscard]] bool stop_requested() const noexcept {
    if (flag_ != nullptr && flag_->load(std::memory_order_acquire)) return true;
    return deadline_ != Clock::time_point::max() && Clock::now() >= deadline_;
  }

  /// This token, additionally bounded by `deadline` (the earlier of the
  /// two wins). How Campaign time-boxes a soak without a second flag.
  [[nodiscard]] StopToken with_deadline(Clock::time_point deadline) const noexcept {
    StopToken bounded = *this;
    if (deadline < bounded.deadline_) bounded.deadline_ = deadline;
    return bounded;
  }

  /// Whether this token can ever fire (callers may skip polling otherwise).
  [[nodiscard]] bool stop_possible() const noexcept {
    return flag_ != nullptr || deadline_ != Clock::time_point::max();
  }

 private:
  friend class StopSource;
  std::shared_ptr<const std::atomic<bool>> flag_;
  Clock::time_point deadline_ = Clock::time_point::max();
};

/// The requesting side: owns the flag, hands out tokens.
class StopSource {
 public:
  StopSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_stop() noexcept { flag_->store(true, std::memory_order_release); }
  [[nodiscard]] bool stop_requested() const noexcept {
    return flag_->load(std::memory_order_acquire);
  }
  [[nodiscard]] StopToken token() const noexcept {
    StopToken token;
    token.flag_ = flag_;
    return token;
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Identifies one matrix cell in observer events. The string_views point at
/// storage owned by the running matrix/campaign and are valid only for the
/// duration of the callback.
struct CellDescriptor {
  std::size_t index = 0;  ///< canonical (cross-product) cell index
  std::string_view scenario;
  std::string_view strategy;
  std::uint64_t seed = 0;
  /// Implementation-axis entry ("" = as authored, honoring per-node pins).
  std::string_view implementation;
};

/// Cumulative run progress, emitted after each flushed cell.
struct CampaignProgress {
  std::size_t cells_done = 0;   ///< cells flushed so far (canonical prefix)
  std::size_t cells_total = 0;
  std::size_t faults = 0;       ///< faults streamed so far (completed cells)
  bool stop_requested = false;  ///< the token had fired when this was emitted
};

struct CellResult;  // explore/matrix.hpp

/// Event sink for streaming campaign results. Default no-op implementations
/// let observers override only what they need.
class CampaignObserver {
 public:
  virtual ~CampaignObserver() = default;
  /// Canonical-order cell marker: the next cell whose results follow.
  virtual void on_cell_start(const CellDescriptor& cell) { (void)cell; }
  /// One per deduplicated fault of a COMPLETED cell, in the cell's
  /// serial-encounter order. Skipped/interrupted cells stream no faults.
  virtual void on_fault(const CellDescriptor& cell, const core::FaultReport& fault) {
    (void)cell;
    (void)fault;
  }
  /// The cell's counters; `result.completed == false` marks a cell the
  /// stop token skipped or interrupted (its faults were withheld).
  virtual void on_cell_done(const CellDescriptor& cell, const CellResult& result) {
    (void)cell;
    (void)result;
  }
  virtual void on_progress(const CampaignProgress& progress) { (void)progress; }
};

}  // namespace dice::explore
