// Consistent snapshots and their store. A Snapshot is the Chandy-Lamport
// cut: one checkpoint per node plus the frames in flight on each directed
// channel at the cut. CloneFactory (dice module) rebuilds a shadow system
// from a Snapshot; the store keeps them addressable by id.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "sim/network.hpp"
#include "snapshot/checkpoint.hpp"

namespace dice::snapshot {

struct ChannelKey {
  sim::NodeId from = sim::kInvalidNode;
  sim::NodeId to = sim::kInvalidNode;
  auto operator<=>(const ChannelKey&) const = default;
};

struct Snapshot {
  SnapshotId id = 0;
  /// Snapshot this cut's delta checkpoints resolve against; 0 = standalone
  /// (every node checkpoint is self-contained). Stamped by the coordinator
  /// from the baseline the initiator advertised.
  SnapshotId baseline_id = 0;
  sim::Time taken_at = 0;
  std::map<sim::NodeId, Checkpoint> nodes;
  /// Payloads recorded in flight on each directed channel, oldest first.
  std::map<ChannelKey, std::vector<util::Bytes>> channels;

  [[nodiscard]] std::size_t total_state_bytes() const;
  [[nodiscard]] std::size_t total_in_flight() const;
  /// Combined hash over all node checkpoints (consistency fingerprint).
  [[nodiscard]] std::uint64_t cut_hash() const;
};

class PreparedSnapshot;

/// Thread-safety: reads (find/size) take a shared lock; writes (put/erase/
/// trim) take an exclusive lock. A found Snapshot* stays valid while other
/// ids are inserted or erased (std::map node stability), which is exactly
/// the pattern parallel exploration needs: the orchestrator publishes one
/// immutable snapshot, then many workers clone from it concurrently.
/// Callers must not erase/trim a snapshot while workers still hold its
/// pointer — the orchestrator only trims between episodes.
///
/// Prepared snapshots (the decode-once form) are published as
/// shared_ptr<const PreparedSnapshot>: find_prepared hands out a reference-
/// counted handle, so trim/erase may drop the store's entry at any time —
/// workers still holding the pointer keep the decoded state alive until
/// their clone run finishes (no between-episodes ordering constraint).
class SnapshotStore {
 public:
  /// Reserves a fresh snapshot id.
  [[nodiscard]] SnapshotId next_id() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  void put(Snapshot snapshot);
  [[nodiscard]] const Snapshot* find(SnapshotId id) const;
  [[nodiscard]] std::size_t size() const;
  void erase(SnapshotId id);
  /// Drops all but the most recent `keep` snapshots (bounded memory in
  /// long-running online testing). Prepared entries are trimmed in step.
  void trim(std::size_t keep);

  /// Publishes the decode-once form of `prepared->id()`.
  void put_prepared(std::shared_ptr<const PreparedSnapshot> prepared);
  /// nullptr when `id` has no prepared form (never built, or trimmed).
  [[nodiscard]] std::shared_ptr<const PreparedSnapshot> find_prepared(SnapshotId id) const;
  [[nodiscard]] std::size_t prepared_size() const;

 private:
  mutable std::shared_mutex mutex_;
  std::map<SnapshotId, Snapshot> snapshots_;
  std::map<SnapshotId, std::shared_ptr<const PreparedSnapshot>> prepared_;
  std::atomic<SnapshotId> next_id_{1};
};

}  // namespace dice::snapshot
