// Consistent snapshots and their store. A Snapshot is the Chandy-Lamport
// cut: one checkpoint per node plus the frames in flight on each directed
// channel at the cut. CloneFactory (dice module) rebuilds a shadow system
// from a Snapshot; the store keeps them addressable by id.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "sim/network.hpp"
#include "snapshot/checkpoint.hpp"

namespace dice::snapshot {

using SnapshotId = std::uint64_t;

struct ChannelKey {
  sim::NodeId from = sim::kInvalidNode;
  sim::NodeId to = sim::kInvalidNode;
  auto operator<=>(const ChannelKey&) const = default;
};

struct Snapshot {
  SnapshotId id = 0;
  sim::Time taken_at = 0;
  std::map<sim::NodeId, Checkpoint> nodes;
  /// Payloads recorded in flight on each directed channel, oldest first.
  std::map<ChannelKey, std::vector<util::Bytes>> channels;

  [[nodiscard]] std::size_t total_state_bytes() const;
  [[nodiscard]] std::size_t total_in_flight() const;
  /// Combined hash over all node checkpoints (consistency fingerprint).
  [[nodiscard]] std::uint64_t cut_hash() const;
};

class SnapshotStore {
 public:
  /// Reserves a fresh snapshot id.
  [[nodiscard]] SnapshotId next_id() noexcept { return next_id_++; }

  void put(Snapshot snapshot);
  [[nodiscard]] const Snapshot* find(SnapshotId id) const;
  [[nodiscard]] std::size_t size() const noexcept { return snapshots_.size(); }
  void erase(SnapshotId id) { snapshots_.erase(id); }
  /// Drops all but the most recent `keep` snapshots (bounded memory in
  /// long-running online testing).
  void trim(std::size_t keep);

 private:
  std::map<SnapshotId, Snapshot> snapshots_;
  SnapshotId next_id_ = 1;
};

}  // namespace dice::snapshot
