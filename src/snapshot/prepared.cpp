#include "snapshot/prepared.hpp"

#include <chrono>

#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace dice::snapshot {

util::Result<std::shared_ptr<const PreparedSnapshot>> PreparedSnapshot::build(
    const Snapshot& snap, const NodeResolver& resolver,
    const PreparedSnapshot* baseline) {
  static obs::Histogram& decode_ms =
      obs::MetricsRegistry::global().histogram(obs::names::kSnapshotDecodeMs);
  std::shared_ptr<PreparedSnapshot> prepared(new PreparedSnapshot());
  prepared->id_ = snap.id;
  prepared->taken_at_ = snap.taken_at;
  prepared->cut_hash_ = snap.cut_hash();
  prepared->state_bytes_ = snap.total_state_bytes();

  for (const auto& [node, checkpoint] : snap.nodes) {
    const bool is_delta = checkpoint.state.size() == 1 &&
                          checkpoint.state[0] == kCheckpointSameAsBaseline;
    if (is_delta) {
      // Resolve against the shared baseline: same DecodedCheckpoint object,
      // so clones restored from the delta are bit-identical to clones
      // restored from the baseline's full decode.
      if (baseline == nullptr || snap.baseline_id == 0 ||
          baseline->id() != snap.baseline_id) {
        return util::make_error("prepared.delta.baseline_mismatch",
                                "node " + std::to_string(node) + " needs baseline " +
                                    std::to_string(snap.baseline_id));
      }
      auto it = baseline->nodes_.find(node);
      if (it == baseline->nodes_.end()) {
        return util::make_error("prepared.delta.baseline_mismatch",
                                "node " + std::to_string(node) +
                                    " absent from baseline");
      }
      if (it->second.hash != checkpoint.hash) {
        return util::make_error("prepared.delta.hash_mismatch",
                                "node " + std::to_string(node));
      }
      prepared->nodes_.emplace(node, NodeState{it->second.state, checkpoint.hash});
      continue;
    }
    const Checkpointable* target = resolver(node);
    if (target == nullptr) {
      return util::make_error("prepared.unknown_node", std::to_string(node));
    }
    const auto decode_start = std::chrono::steady_clock::now();
    util::ByteReader reader(checkpoint.state);
    auto decoded = target->parse(reader);
    if (!decoded) return decoded.error();
    decode_ms.observe(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - decode_start)
                          .count());
    prepared->nodes_.emplace(node,
                             NodeState{std::move(decoded).take(), checkpoint.hash});
  }

  for (const auto& [key, payloads] : snap.channels) {
    sim::Time offset = 0;
    for (const util::Bytes& payload : payloads) {
      prepared->schedule_.push_back(PreparedFrame{key.from, key.to, payload, offset});
      offset += 1;  // one microsecond apart keeps per-channel ordering deterministic
    }
  }
  return std::shared_ptr<const PreparedSnapshot>(std::move(prepared));
}

}  // namespace dice::snapshot
