#include "snapshot/prepared.hpp"

namespace dice::snapshot {

util::Result<std::shared_ptr<const PreparedSnapshot>> PreparedSnapshot::build(
    const Snapshot& snap, const NodeResolver& resolver) {
  std::shared_ptr<PreparedSnapshot> prepared(new PreparedSnapshot());
  prepared->id_ = snap.id;
  prepared->taken_at_ = snap.taken_at;
  prepared->cut_hash_ = snap.cut_hash();
  prepared->state_bytes_ = snap.total_state_bytes();

  for (const auto& [node, checkpoint] : snap.nodes) {
    const Checkpointable* target = resolver(node);
    if (target == nullptr) {
      return util::make_error("prepared.unknown_node", std::to_string(node));
    }
    util::ByteReader reader(checkpoint.state);
    auto decoded = target->parse(reader);
    if (!decoded) return decoded.error();
    prepared->nodes_.emplace(node,
                             NodeState{std::move(decoded).take(), checkpoint.hash});
  }

  for (const auto& [key, payloads] : snap.channels) {
    sim::Time offset = 0;
    for (const util::Bytes& payload : payloads) {
      prepared->schedule_.push_back(PreparedFrame{key.from, key.to, payload, offset});
      offset += 1;  // one microsecond apart keeps per-channel ordering deterministic
    }
  }
  return std::shared_ptr<const PreparedSnapshot>(std::move(prepared));
}

}  // namespace dice::snapshot
