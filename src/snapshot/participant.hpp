// Chandy-Lamport snapshot participant: a sim::Node adapter that sits
// between the network and a protocol implementation (the BGP router).
//
// Marker frames drive the classic algorithm:
//   - first marker (or local initiation): checkpoint local state, emit
//     markers on every outgoing channel, start recording every incoming
//     channel except the one the marker arrived on;
//   - subsequent markers: stop recording that channel — everything recorded
//     in between is the channel's in-flight state at the cut;
//   - when all incoming channels have delivered their marker, report the
//     checkpoint and channel logs to the coordinator.
//
// Data frames always flow through to the inner protocol handler; recording
// is passive. This matches the paper's requirement that snapshots are
// "lightweight" and taken while the system keeps running.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/network.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/store.hpp"

namespace dice::snapshot {

class SnapshotCoordinator;

class SnapshotParticipant : public sim::Node {
 public:
  SnapshotParticipant(sim::Network& network, sim::NodeId id);

  [[nodiscard]] sim::NodeId node_id() const noexcept { return id_; }
  [[nodiscard]] sim::Network& network() noexcept { return net_; }

  void set_coordinator(SnapshotCoordinator* coordinator) noexcept {
    coordinator_ = coordinator;
  }

  /// Starts a snapshot with this node as initiator (paper Fig. 2 step 1:
  /// the chosen explorer triggers snapshot creation).
  void initiate_snapshot(SnapshotId id);

  /// Abandons an in-progress snapshot (markers lost to a partition). The
  /// node discards its recorded state and is ready for the next snapshot.
  void abort_snapshot();

  // sim::Node
  void on_frame(sim::NodeId from, const sim::Frame& frame) final;

 protected:
  /// Protocol payload delivery (BGP messages for the router subclass).
  virtual void deliver_data(sim::NodeId from, const util::Bytes& payload) = 0;

  /// The state being checkpointed.
  [[nodiscard]] virtual Checkpointable& checkpointable() = 0;

 private:
  void begin_snapshot(SnapshotId id, sim::NodeId skip_channel);
  void finish_if_complete();

  sim::Network& net_;
  sim::NodeId id_;
  SnapshotCoordinator* coordinator_ = nullptr;

  // Active snapshot bookkeeping (one snapshot at a time per the paper's
  // episodic exploration; concurrent snapshots would need per-id state).
  bool snapshotting_ = false;
  SnapshotId active_id_ = 0;
  Checkpoint local_checkpoint_;
  std::map<sim::NodeId, bool> awaiting_marker_;  // incoming channel -> pending
  std::map<sim::NodeId, std::vector<util::Bytes>> channel_log_;
};

}  // namespace dice::snapshot
