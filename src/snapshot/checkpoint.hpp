// Lightweight node checkpoints (paper Fig. 2 step 2: "establish consistent
// shadow snapshot of local node checkpoints"). A Checkpointable serializes
// its *dynamic* state — configuration is part of the system blueprint and
// is not duplicated into checkpoints, which is what keeps them lightweight.
#pragma once

#include <cstdint>
#include <memory>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace dice::snapshot {

using SnapshotId = std::uint64_t;

/// Snapshot-layer envelope for delta checkpoints: a node whose state did not
/// change since the baseline snapshot writes exactly this one byte instead
/// of a full checkpoint; PreparedSnapshot::build resolves it by sharing the
/// baseline's DecodedCheckpoint. The value is reserved across checkpoint
/// format owners: legacy streams start with 0x00 (high byte of a u32 count),
/// the byte-coded BGP format with 0x02 (bgp::ckpt::kFormatV2).
inline constexpr std::uint8_t kCheckpointSameAsBaseline = 0x03;

/// Typed, immutable result of decoding a checkpoint once. Concrete
/// subclasses live with the protocol (bgp::RouterCheckpoint); the snapshot
/// layer only needs an opaque, shareable handle so one decode can feed many
/// clones (PreparedSnapshot holds these via shared_ptr<const>).
class DecodedCheckpoint {
 public:
  virtual ~DecodedCheckpoint() = default;
};

class Checkpointable {
 public:
  virtual ~Checkpointable() = default;

  /// Serializes dynamic state (RIBs, session FSM states, counters).
  virtual void checkpoint(util::ByteWriter& writer) const = 0;

  /// Decodes bytes produced by checkpoint() into typed, immutable state.
  /// Const and side-effect free: the result is shareable across any number
  /// of clones (decode once, apply many).
  [[nodiscard]] virtual util::Result<std::shared_ptr<const DecodedCheckpoint>> parse(
      util::ByteReader& reader) const = 0;

  /// Applies previously parsed state to this instance — the cheap half of
  /// restore (no byte decoding). Implementations must re-arm any timers
  /// implied by the applied state.
  [[nodiscard]] virtual util::Status apply(const DecodedCheckpoint& state) = 0;

  /// One-shot restore (parse + apply). Kept for callers that only restore
  /// a checkpoint once and have no reason to share the decoded form.
  [[nodiscard]] virtual util::Status restore(util::ByteReader& reader);

  /// Content hash of the checkpointed state; clones must reproduce it.
  [[nodiscard]] virtual std::uint64_t state_hash() const;

  /// Delta-aware encode for the snapshot path. `baseline` is the snapshot id
  /// the eventual reader resolves deltas against (0 = no baseline, encode
  /// full). Implementations that track churn may write the one-byte
  /// kCheckpointSameAsBaseline envelope when their state is provably
  /// unchanged since they encoded into `baseline`; the returned hash must
  /// always be the FULL-state content hash (it feeds Snapshot::cut_hash,
  /// which must not depend on the encoding chosen). The default encodes a
  /// full checkpoint unconditionally.
  [[nodiscard]] virtual std::uint64_t encode_checkpoint(util::ByteWriter& writer,
                                                        SnapshotId this_snapshot,
                                                        SnapshotId baseline);
};

/// A captured node checkpoint.
struct Checkpoint {
  std::uint32_t node = 0;
  util::Bytes state;
  std::uint64_t hash = 0;
};

}  // namespace dice::snapshot
