// Lightweight node checkpoints (paper Fig. 2 step 2: "establish consistent
// shadow snapshot of local node checkpoints"). A Checkpointable serializes
// its *dynamic* state — configuration is part of the system blueprint and
// is not duplicated into checkpoints, which is what keeps them lightweight.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace dice::snapshot {

class Checkpointable {
 public:
  virtual ~Checkpointable() = default;

  /// Serializes dynamic state (RIBs, session FSM states, counters).
  virtual void checkpoint(util::ByteWriter& writer) const = 0;

  /// Restores state previously produced by checkpoint(). Implementations
  /// must re-arm any timers implied by the restored state.
  [[nodiscard]] virtual util::Status restore(util::ByteReader& reader) = 0;

  /// Content hash of the checkpointed state; clones must reproduce it.
  [[nodiscard]] virtual std::uint64_t state_hash() const;
};

/// A captured node checkpoint.
struct Checkpoint {
  std::uint32_t node = 0;
  util::Bytes state;
  std::uint64_t hash = 0;
};

}  // namespace dice::snapshot
