// Lightweight node checkpoints (paper Fig. 2 step 2: "establish consistent
// shadow snapshot of local node checkpoints"). A Checkpointable serializes
// its *dynamic* state — configuration is part of the system blueprint and
// is not duplicated into checkpoints, which is what keeps them lightweight.
#pragma once

#include <cstdint>
#include <memory>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace dice::snapshot {

/// Typed, immutable result of decoding a checkpoint once. Concrete
/// subclasses live with the protocol (bgp::RouterCheckpoint); the snapshot
/// layer only needs an opaque, shareable handle so one decode can feed many
/// clones (PreparedSnapshot holds these via shared_ptr<const>).
class DecodedCheckpoint {
 public:
  virtual ~DecodedCheckpoint() = default;
};

class Checkpointable {
 public:
  virtual ~Checkpointable() = default;

  /// Serializes dynamic state (RIBs, session FSM states, counters).
  virtual void checkpoint(util::ByteWriter& writer) const = 0;

  /// Decodes bytes produced by checkpoint() into typed, immutable state.
  /// Const and side-effect free: the result is shareable across any number
  /// of clones (decode once, apply many).
  [[nodiscard]] virtual util::Result<std::shared_ptr<const DecodedCheckpoint>> parse(
      util::ByteReader& reader) const = 0;

  /// Applies previously parsed state to this instance — the cheap half of
  /// restore (no byte decoding). Implementations must re-arm any timers
  /// implied by the applied state.
  [[nodiscard]] virtual util::Status apply(const DecodedCheckpoint& state) = 0;

  /// One-shot restore (parse + apply). Kept for callers that only restore
  /// a checkpoint once and have no reason to share the decoded form.
  [[nodiscard]] virtual util::Status restore(util::ByteReader& reader);

  /// Content hash of the checkpointed state; clones must reproduce it.
  [[nodiscard]] virtual std::uint64_t state_hash() const;
};

/// A captured node checkpoint.
struct Checkpoint {
  std::uint32_t node = 0;
  util::Bytes state;
  std::uint64_t hash = 0;
};

}  // namespace dice::snapshot
