#include "snapshot/participant.hpp"

#include <chrono>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "snapshot/coordinator.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace dice::snapshot {

namespace {
const util::Logger& logger() {
  static util::Logger instance("snapshot");
  return instance;
}

struct EncodeMetrics {
  obs::Counter& delta_nodes;
  obs::Counter& baseline_nodes;
  obs::Histogram& encode_ms;
};

EncodeMetrics& encode_metrics() {
  static EncodeMetrics metrics{
      obs::MetricsRegistry::global().counter(obs::names::kSnapshotDeltaNodes),
      obs::MetricsRegistry::global().counter(obs::names::kSnapshotBaselineNodes),
      obs::MetricsRegistry::global().histogram(obs::names::kSnapshotEncodeMs),
  };
  return metrics;
}
}  // namespace

SnapshotParticipant::SnapshotParticipant(sim::Network& network, sim::NodeId id)
    : net_(network), id_(id) {}

void SnapshotParticipant::initiate_snapshot(SnapshotId id) {
  if (snapshotting_) {
    logger().warn() << "node " << id_ << " ignoring snapshot " << id
                    << ": snapshot " << active_id_ << " in progress";
    return;
  }
  begin_snapshot(id, sim::kInvalidNode);
  finish_if_complete();  // degenerate case: node with no neighbors
}

void SnapshotParticipant::abort_snapshot() {
  snapshotting_ = false;
  active_id_ = 0;
  local_checkpoint_ = Checkpoint{};
  awaiting_marker_.clear();
  channel_log_.clear();
}

void SnapshotParticipant::begin_snapshot(SnapshotId id, sim::NodeId skip_channel) {
  snapshotting_ = true;
  active_id_ = id;
  channel_log_.clear();
  awaiting_marker_.clear();

  // Record local state at the cut. The encode is delta-aware: when the
  // coordinator advertised a baseline and the checkpointable knows its
  // state hasn't moved since it encoded into that baseline, the stream is
  // the one-byte "same as baseline" envelope. The hash is the full-state
  // content hash either way (cut_hash must not see the encoding choice).
  const SnapshotId baseline =
      coordinator_ != nullptr ? coordinator_->baseline_id() : 0;
  const auto encode_start = std::chrono::steady_clock::now();
  util::ByteWriter writer;
  local_checkpoint_.hash = checkpointable().encode_checkpoint(writer, id, baseline);
  local_checkpoint_.node = id_;
  local_checkpoint_.state = std::move(writer).take();
  EncodeMetrics& metrics = encode_metrics();
  metrics.encode_ms.observe(std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - encode_start)
                                .count());
  const bool is_delta = local_checkpoint_.state.size() == 1 &&
                        local_checkpoint_.state[0] == kCheckpointSameAsBaseline;
  (is_delta ? metrics.delta_nodes : metrics.baseline_nodes).add();

  // Emit markers on all outgoing channels; start recording all incoming
  // channels except the one the first marker arrived on (its state is empty
  // by the algorithm's construction).
  for (sim::NodeId neighbor : net_.neighbors(id_)) {
    sim::Frame marker;
    marker.kind = sim::FrameKind::kMarker;
    marker.snapshot_id = id;
    net_.send(id_, neighbor, std::move(marker));
    if (neighbor != skip_channel) {
      awaiting_marker_[neighbor] = true;
      channel_log_[neighbor] = {};
    }
  }
  logger().debug() << "node " << id_ << " recorded state for snapshot " << id;
}

void SnapshotParticipant::on_frame(sim::NodeId from, const sim::Frame& frame) {
  if (frame.kind == sim::FrameKind::kMarker) {
    if (!snapshotting_) {
      begin_snapshot(frame.snapshot_id, from);
    } else if (frame.snapshot_id == active_id_) {
      awaiting_marker_.erase(from);  // channel state for `from` is complete
    }
    finish_if_complete();
    return;
  }

  // Data frame: record if this incoming channel is still being logged.
  if (snapshotting_) {
    auto it = awaiting_marker_.find(from);
    if (it != awaiting_marker_.end() && it->second) {
      channel_log_[from].push_back(frame.payload);
    }
  }
  deliver_data(from, frame.payload);
}

void SnapshotParticipant::finish_if_complete() {
  if (!snapshotting_ || !awaiting_marker_.empty()) return;
  snapshotting_ = false;
  if (coordinator_ != nullptr) {
    coordinator_->report(active_id_, net_.simulator().now(), std::move(local_checkpoint_),
                         std::move(channel_log_));
  }
  local_checkpoint_ = Checkpoint{};
  channel_log_.clear();
}

}  // namespace dice::snapshot
