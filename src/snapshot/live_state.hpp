// PreparedLiveState: the live-system variant of PreparedSnapshot.
//
// A PreparedSnapshot freezes a consistent cut so clones can be restored
// from it; a PreparedLiveState additionally records what a *live* System
// needs to carry on from that cut as if it had bootstrapped itself — the
// simulator resume point (sessions re-arm their timers relative to it, so
// later snapshot timestamps line up with a fresh bootstrap's) and the
// bootstrap verdict subsequent consumers replay. It is the artifact the
// explore::LiveStateCache publishes: the first ScenarioMatrix cell of a
// (prototype, seed) key converges its live system once and donates this
// capture; every later cell resumes from it in microseconds instead of
// replaying bootstrap.
//
// Only *quiescent* bootstraps are captured. A churning system's cut is a
// consistent state, but restoring it re-injects the in-flight frames on a
// fresh schedule — a different (if equally valid) interleaving. Verdicts
// must be scheduling-independent, so non-quiescent keys are marked
// uncacheable and replayed instead (cheap now that the oscillation
// early-exit governs bootstrap too).
#pragma once

#include <cstdint>
#include <memory>

#include "snapshot/prepared.hpp"

namespace dice::snapshot {

struct PreparedLiveState {
  /// Typed per-node checkpoints + pre-built in-flight frame schedule
  /// (empty for a quiescent capture) — shared with any concurrent holder.
  std::shared_ptr<const PreparedSnapshot> snapshot;
  /// The raw (encoded) cut the decoded form above was built from. Kept so
  /// the capture can be serialized — svc::ArtifactStore persists these raw
  /// bytes and a restarted daemon re-decodes them against its own routers.
  /// Always standalone (baseline_id 0): captures happen before any episode
  /// snapshot exists to delta against. May be null for states that were
  /// assembled from an already-decoded source and never need persisting.
  std::shared_ptr<const Snapshot> raw;
  /// Simulator clock at capture (the donor's bootstrap end).
  sim::Time resume_at = 0;
  /// Events the donor's bootstrap executed (receipt for benches: the work
  /// every resumed cell skips).
  std::uint64_t bootstrap_executed = 0;
  /// Bootstrap verdict to replay on resume.
  bool quiesced = false;
  bool oscillation_exit = false;
};

}  // namespace dice::snapshot
