// PreparedSnapshot: the decode-once form of a consistent snapshot.
//
// A raw Snapshot stores each node's checkpoint as opaque bytes and each
// channel's in-flight frames as raw payload lists — cheap to capture, but
// every clone built from it used to re-parse every checkpoint and rebuild
// the frame schedule from scratch. A PreparedSnapshot is produced exactly
// once per take_snapshot: every checkpoint parsed into its typed
// DecodedCheckpoint, the in-flight payloads flattened into a ready-to-inject
// frame schedule. It is immutable after build and published through the
// SnapshotStore as shared_ptr<const>, so any number of workers can restore
// clones from it concurrently while the store trims older entries.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "snapshot/store.hpp"

namespace dice::snapshot {

/// One in-flight frame of the cut, pre-scheduled: inject `payload` on the
/// directed channel from->to at `offset` (staggered per channel to preserve
/// recorded ordering, exactly like the legacy clone path).
struct PreparedFrame {
  sim::NodeId from = sim::kInvalidNode;
  sim::NodeId to = sim::kInvalidNode;
  util::Bytes payload;
  sim::Time offset = 0;
};

class PreparedSnapshot {
 public:
  struct NodeState {
    std::shared_ptr<const DecodedCheckpoint> state;
    std::uint64_t hash = 0;  ///< checkpoint hash (consistency fingerprint)
  };

  /// Maps a node id to the Checkpointable that knows how to parse its
  /// checkpoint (the live system's router). nullptr = unknown node.
  using NodeResolver = std::function<const Checkpointable*(sim::NodeId)>;

  /// Parses every node checkpoint exactly once and pre-builds the in-flight
  /// frame schedule. Fails if any node is unresolvable or any checkpoint is
  /// malformed (the raw snapshot stays untouched either way).
  ///
  /// `baseline` resolves delta checkpoints: a node whose stream is the
  /// one-byte kCheckpointSameAsBaseline envelope shares the baseline's
  /// DecodedCheckpoint instead of decoding anything. Required (with a
  /// matching id) when `snap.baseline_id != 0` and any node rode the delta;
  /// a missing or wrong baseline fails with the stable code
  /// `prepared.delta.baseline_mismatch`, a baseline whose node hash moved
  /// with `prepared.delta.hash_mismatch` (never a silent wrong restore).
  [[nodiscard]] static util::Result<std::shared_ptr<const PreparedSnapshot>> build(
      const Snapshot& snap, const NodeResolver& resolver,
      const PreparedSnapshot* baseline = nullptr);

  [[nodiscard]] SnapshotId id() const noexcept { return id_; }
  [[nodiscard]] sim::Time taken_at() const noexcept { return taken_at_; }
  /// Same value as the source Snapshot::cut_hash() (computed once at build).
  [[nodiscard]] std::uint64_t cut_hash() const noexcept { return cut_hash_; }
  [[nodiscard]] std::size_t state_bytes() const noexcept { return state_bytes_; }
  [[nodiscard]] const std::map<sim::NodeId, NodeState>& nodes() const noexcept {
    return nodes_;
  }
  /// Channel-key order, per-channel offsets ascending — replaying this
  /// schedule is bit-identical to the legacy per-clone injection loop.
  [[nodiscard]] const std::vector<PreparedFrame>& schedule() const noexcept {
    return schedule_;
  }

 private:
  PreparedSnapshot() = default;

  SnapshotId id_ = 0;
  sim::Time taken_at_ = 0;
  std::uint64_t cut_hash_ = 0;
  std::size_t state_bytes_ = 0;
  std::map<sim::NodeId, NodeState> nodes_;
  std::vector<PreparedFrame> schedule_;
};

}  // namespace dice::snapshot
