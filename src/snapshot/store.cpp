#include "snapshot/store.hpp"

#include <mutex>

#include "snapshot/prepared.hpp"
#include "util/hash.hpp"

namespace dice::snapshot {

util::Status Checkpointable::restore(util::ByteReader& reader) {
  auto decoded = parse(reader);
  if (!decoded) return decoded.error();
  return apply(*decoded.value());
}

std::uint64_t Checkpointable::state_hash() const {
  util::ByteWriter writer;
  checkpoint(writer);
  return util::fnv1a(writer.span());
}

std::uint64_t Checkpointable::encode_checkpoint(util::ByteWriter& writer,
                                                SnapshotId /*this_snapshot*/,
                                                SnapshotId /*baseline*/) {
  const std::size_t before = writer.size();
  checkpoint(writer);
  return util::fnv1a(std::span(writer.span()).subspan(before));
}

std::size_t Snapshot::total_state_bytes() const {
  std::size_t total = 0;
  for (const auto& [node, cp] : nodes) total += cp.state.size();
  return total;
}

std::size_t Snapshot::total_in_flight() const {
  std::size_t total = 0;
  for (const auto& [key, frames] : channels) total += frames.size();
  return total;
}

std::uint64_t Snapshot::cut_hash() const {
  std::uint64_t h = util::kFnvOffset;
  for (const auto& [node, cp] : nodes) {
    h = util::hash_mix(h, node);
    h = util::hash_mix(h, cp.hash);
  }
  for (const auto& [key, frames] : channels) {
    h = util::hash_mix(h, key.from);
    h = util::hash_mix(h, key.to);
    for (const util::Bytes& payload : frames) h = util::hash_mix(h, util::fnv1a(payload));
  }
  return util::hash_finalize(h);
}

void SnapshotStore::put(Snapshot snapshot) {
  const SnapshotId id = snapshot.id;
  const std::unique_lock lock(mutex_);
  snapshots_.insert_or_assign(id, std::move(snapshot));
}

const Snapshot* SnapshotStore::find(SnapshotId id) const {
  const std::shared_lock lock(mutex_);
  auto it = snapshots_.find(id);
  return it == snapshots_.end() ? nullptr : &it->second;
}

std::size_t SnapshotStore::size() const {
  const std::shared_lock lock(mutex_);
  return snapshots_.size();
}

void SnapshotStore::erase(SnapshotId id) {
  const std::unique_lock lock(mutex_);
  snapshots_.erase(id);
  prepared_.erase(id);
}

void SnapshotStore::trim(std::size_t keep) {
  const std::unique_lock lock(mutex_);
  while (snapshots_.size() > keep) {
    prepared_.erase(snapshots_.begin()->first);
    snapshots_.erase(snapshots_.begin());
  }
  // Prepared entries can outnumber raw ones only if the raw snapshot was
  // erased first; apply the same bound to them directly.
  while (prepared_.size() > keep) prepared_.erase(prepared_.begin());
}

void SnapshotStore::put_prepared(std::shared_ptr<const PreparedSnapshot> prepared) {
  const SnapshotId id = prepared->id();
  const std::unique_lock lock(mutex_);
  prepared_.insert_or_assign(id, std::move(prepared));
}

std::shared_ptr<const PreparedSnapshot> SnapshotStore::find_prepared(SnapshotId id) const {
  const std::shared_lock lock(mutex_);
  auto it = prepared_.find(id);
  return it == prepared_.end() ? nullptr : it->second;
}

std::size_t SnapshotStore::prepared_size() const {
  const std::shared_lock lock(mutex_);
  return prepared_.size();
}

}  // namespace dice::snapshot
