#include "snapshot/coordinator.hpp"

#include "util/log.hpp"

namespace dice::snapshot {

namespace {
const util::Logger& logger() {
  static util::Logger instance("snapshot.coord");
  return instance;
}
}  // namespace

void SnapshotCoordinator::report(SnapshotId id, sim::Time now, Checkpoint checkpoint,
                                 std::map<sim::NodeId, std::vector<util::Bytes>> incoming) {
  if (!pending_ || pending_->id != id) {
    pending_ = Snapshot{};
    pending_->id = id;
    pending_->baseline_id = baseline_id_;
    pending_->taken_at = now;
    reported_.clear();
  }
  const sim::NodeId node = checkpoint.node;
  pending_->nodes[node] = std::move(checkpoint);
  for (auto& [from, frames] : incoming) {
    pending_->channels[ChannelKey{from, node}] = std::move(frames);
  }
  reported_.insert(node);

  if (reported_ == members_) {
    logger().debug() << "snapshot " << id << " complete: " << pending_->nodes.size()
                     << " nodes, " << pending_->total_in_flight() << " in-flight frames";
    Snapshot done = std::move(*pending_);
    pending_.reset();
    reported_.clear();
    store_.put(done);
    if (on_complete_) on_complete_(done);
  }
}

}  // namespace dice::snapshot
