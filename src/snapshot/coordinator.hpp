// Snapshot coordinator: collects per-node checkpoints and channel logs as
// participants complete the marker protocol, assembles the consistent
// Snapshot, and files it in the store. In a real federated deployment this
// role is distributed; here it is the test-harness-visible aggregation
// point (the narrow interface still only ever carries opaque state bytes
// produced by each node itself).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "snapshot/store.hpp"

namespace dice::snapshot {

class SnapshotCoordinator {
 public:
  using CompletionCallback = std::function<void(const Snapshot&)>;

  explicit SnapshotCoordinator(SnapshotStore& store) : store_(store) {}

  /// Declares the nodes participating in snapshots (the system membership).
  void set_members(std::set<sim::NodeId> members) { members_ = std::move(members); }

  void set_on_complete(CompletionCallback cb) { on_complete_ = std::move(cb); }

  /// Baseline snapshot the NEXT cut's delta checkpoints may resolve against
  /// (0 = none; participants encode full). Participants read this at
  /// checkpoint time; the assembled Snapshot is stamped with it so the
  /// prepare step knows which PreparedSnapshot resolves the deltas.
  void set_baseline(SnapshotId id) noexcept { baseline_id_ = id; }
  [[nodiscard]] SnapshotId baseline_id() const noexcept { return baseline_id_; }

  /// Called by participants when their local protocol finishes.
  void report(SnapshotId id, sim::Time now, Checkpoint checkpoint,
              std::map<sim::NodeId, std::vector<util::Bytes>> incoming_channels);

  [[nodiscard]] bool in_progress() const noexcept { return pending_.has_value(); }
  [[nodiscard]] SnapshotStore& store() noexcept { return store_; }

  /// Drops a partially assembled snapshot (failed/aborted attempt).
  void reset() {
    pending_.reset();
    reported_.clear();
  }

 private:
  SnapshotStore& store_;
  SnapshotId baseline_id_ = 0;
  std::set<sim::NodeId> members_;
  CompletionCallback on_complete_;
  std::optional<Snapshot> pending_;
  std::set<sim::NodeId> reported_;
};

}  // namespace dice::snapshot
