// BGP message structures (RFC 4271 §4): OPEN, UPDATE, NOTIFICATION,
// KEEPALIVE, plus the Message variant exchanged between sessions.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "bgp/attr.hpp"
#include "bgp/types.hpp"
#include "util/ip.hpp"

namespace dice::bgp {

inline constexpr std::size_t kMarkerLength = 16;
inline constexpr std::size_t kHeaderLength = 19;   // marker + length + type
inline constexpr std::size_t kMaxMessageLength = 4096;

struct OpenMessage {
  std::uint8_t version = 4;
  std::uint16_t my_asn = 0;       // 2-octet AS field; 4-byte speakers send
                                  // AS_TRANS + the AS4 capability (codec.hpp)
  std::uint16_t hold_time = 90;   // seconds; 0 disables keepalives
  RouterId router_id = 0;
  std::vector<std::uint8_t> opt_params;  // carried opaquely

  bool operator==(const OpenMessage&) const = default;
};

struct UpdateMessage {
  std::vector<util::IpPrefix> withdrawn;
  PathAttributes attrs;                 // meaningful when nlri is non-empty
  std::vector<util::IpPrefix> nlri;

  [[nodiscard]] bool announces() const noexcept { return !nlri.empty(); }
  [[nodiscard]] std::string to_string() const;

  bool operator==(const UpdateMessage&) const = default;
};

/// NOTIFICATION error codes (RFC 4271 §4.5).
enum class NotifCode : std::uint8_t {
  kMessageHeaderError = 1,
  kOpenMessageError = 2,
  kUpdateMessageError = 3,
  kHoldTimerExpired = 4,
  kFsmError = 5,
  kCease = 6,
};

/// UPDATE error subcodes (§6.3) — the codec produces these on bad input.
enum class UpdateError : std::uint8_t {
  kMalformedAttributeList = 1,
  kUnrecognizedWellKnownAttribute = 2,
  kMissingWellKnownAttribute = 3,
  kAttributeFlagsError = 4,
  kAttributeLengthError = 5,
  kInvalidOrigin = 6,
  kInvalidNextHop = 8,
  kOptionalAttributeError = 9,
  kInvalidNetworkField = 10,
  kMalformedAsPath = 11,
};

struct NotificationMessage {
  NotifCode code = NotifCode::kCease;
  std::uint8_t subcode = 0;
  std::vector<std::uint8_t> data;

  [[nodiscard]] std::string to_string() const;

  bool operator==(const NotificationMessage&) const = default;
};

struct KeepaliveMessage {
  bool operator==(const KeepaliveMessage&) const = default;
};

using Message = std::variant<OpenMessage, UpdateMessage, NotificationMessage, KeepaliveMessage>;

[[nodiscard]] MessageType type_of(const Message& msg) noexcept;
[[nodiscard]] std::string to_string(const Message& msg);

}  // namespace dice::bgp
