#include "bgp/router.hpp"

#include <algorithm>
#include <atomic>
#include <set>
#include <span>
#include <type_traits>

#include "bgp/checkpoint_codec.hpp"
#include "concolic/context.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace dice::bgp {

namespace {
const util::Logger& logger() {
  static util::Logger instance("bgp.router");
  return instance;
}

std::atomic<std::uint64_t> g_checkpoint_decodes{0};
}  // namespace

std::uint64_t checkpoint_decode_count() noexcept {
  return g_checkpoint_decodes.load(std::memory_order_relaxed);
}

BgpRouter::BgpRouter(sim::Network& network, sim::NodeId id, RouterConfig config,
                     std::shared_ptr<const std::map<util::IpAddress, sim::NodeId>> address_book)
    : NodeImplementation(network, id),
      config_(std::move(config)),
      address_book_(std::move(address_book)) {
  for (const NeighborConfig& neighbor : config_.neighbors) {
    auto it = address_book_->find(neighbor.address);
    if (it == address_book_->end()) {
      logger().warn() << config_.name << ": neighbor " << neighbor.address.to_string()
                      << " has no node mapping; skipped";
      continue;
    }
    sessions_.emplace(it->second, std::make_unique<Session>(*this, it->second, neighbor, config_));
  }
}

BgpRouter::BgpRouter(sim::Network& network, sim::NodeId id, RouterConfig config,
                     std::map<util::IpAddress, sim::NodeId> address_book)
    : BgpRouter(network, id, std::move(config),
                std::make_shared<const std::map<util::IpAddress, sim::NodeId>>(
                    std::move(address_book))) {}

void BgpRouter::start() {
  ++state_version_;  // origination mutates Loc-RIB
  originate_networks();
  for (auto& [peer, session] : sessions_) session->start();
}

void BgpRouter::originate_networks() {
  // run_decision() knows about configured networks and will install the
  // locally originated route (or keep a better learned one, which cannot
  // happen at start time but keeps the logic in one place).
  for (const util::IpPrefix& prefix : config_.networks) run_decision(prefix);
}

const Rib* BgpRouter::adj_rib_in(sim::NodeId peer) const {
  auto it = adj_in_.find(peer);
  return it == adj_in_.end() ? nullptr : &it->second;
}

const Rib* BgpRouter::adj_rib_out(sim::NodeId peer) const {
  auto it = adj_out_.find(peer);
  return it == adj_out_.end() ? nullptr : &it->second;
}

Session* BgpRouter::session(sim::NodeId peer) {
  auto it = sessions_.find(peer);
  return it == sessions_.end() ? nullptr : it->second.get();
}

void BgpRouter::reset_session(sim::NodeId peer) {
  if (Session* s = session(peer)) {
    s->stop(NotifCode::kCease, 0, "administrative reset");
  }
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

void BgpRouter::session_send(sim::NodeId peer, const Message& msg, bool background) {
  auto encoded = encode(msg);
  if (!encoded) {
    logger().error() << config_.name << ": encode failed: " << encoded.error().to_string();
    return;
  }
  sim::Frame frame;
  frame.kind = sim::FrameKind::kData;
  frame.payload = std::move(encoded).take();
  frame.background = background;
  network().send(node_id(), peer, std::move(frame));
}

void BgpRouter::deliver_data(sim::NodeId from, const util::Bytes& payload) {
  Session* s = session(from);
  if (s == nullptr) return;  // frame from an unconfigured node
  try {
    auto msg = decode(payload, DecodeOptions{config_.bug_mask});
    if (!msg) {
      ++stats_.decode_failures;
      // §6: send the prescribed NOTIFICATION and reset the session.
      const NotificationMessage notif = error_to_notification(msg.error());
      s->stop(notif.code, notif.subcode, "decode error: " + msg.error().to_string());
      return;
    }
    s->handle_message(msg.value());
  } catch (const concolic::CrashSignal& crash) {
    // An injected programming error fired in the live/clone data path. A
    // real daemon would abort; we model the crash as a session-wide reset
    // and surface it to DiCE's crash checker via handler_crashes.
    ++stats_.handler_crashes;
    logger().warn() << config_.name << ": handler crash: " << crash.what;
    for (auto& [peer, session] : sessions_) {
      session->reset_transport("daemon crash: " + crash.what);
    }
  }
}

// ---------------------------------------------------------------------------
// Session callbacks
// ---------------------------------------------------------------------------

void BgpRouter::session_established(sim::NodeId peer) {
  ++state_version_;  // send_full_table populates Adj-RIB-Out
  if (Session* s = session(peer)) send_full_table(*s);
}

void BgpRouter::session_down(sim::NodeId peer, const std::string& reason) {
  (void)reason;
  ++state_version_;  // Adj-RIBs flushed below
  // Flush everything learned from the peer and withdraw what we advertised.
  auto it = adj_in_.find(peer);
  if (it != adj_in_.end()) {
    std::vector<util::IpPrefix> lost;
    lost.reserve(it->second.size());
    for (const auto& [prefix, route] : it->second.table()) lost.push_back(prefix);
    adj_in_.erase(it);
    for (const util::IpPrefix& prefix : lost) run_decision(prefix);
  }
  adj_out_.erase(peer);
  if (auto_restart_) schedule_restart(peer);
}

void BgpRouter::schedule_restart(sim::NodeId peer) {
  network().simulator().schedule_after(restart_delay_, [this, peer] {
    if (Session* s = session(peer)) {
      if (s->state() == SessionState::kIdle) s->start();
    }
  });
}

void BgpRouter::session_update(sim::NodeId peer, const UpdateMessage& update) {
  ++stats_.updates_received;
  ++state_version_;  // process_update touches Adj-RIB-In/Loc-RIB/Adj-RIB-Out
  process_update(peer, update);
}

// ---------------------------------------------------------------------------
// Route processing
// ---------------------------------------------------------------------------

void BgpRouter::process_update(sim::NodeId peer, const UpdateMessage& update) {
  Session* s = session(peer);
  if (s == nullptr) return;
  Rib& rib_in = adj_in_[peer];

  for (const util::IpPrefix& prefix : update.withdrawn) {
    if (rib_in.erase(prefix)) run_decision(prefix);
  }

  if (!update.announces()) return;

  // RFC 4271 §9.1.2: AS-path loop detection — routes carrying our own ASN
  // are treated as withdrawn. With a 4-byte local ASN the 2-octet AS_PATH
  // wire format carries only the truncated low half (codec.hpp), so the
  // check must also match that form.
  if (update.attrs.as_path.contains(config_.asn) ||
      (config_.asn > 0xffff && update.attrs.as_path.contains(config_.asn & 0xffff))) {
    ++stats_.loop_rejects;
    for (const util::IpPrefix& prefix : update.nlri) {
      if (rib_in.erase(prefix)) run_decision(prefix);
    }
    return;
  }

  // Next-hop resolvability (§6.3 / BIRD's import check): a route whose
  // NEXT_HOP is not a known neighbor address is unusable and is treated as
  // withdrawn. Without this, crafted UPDATEs could park unroutable entries
  // in the Loc-RIB. iBGP is exempt: iBGP preserves the original eBGP next
  // hop and resolves it recursively through the IGP, which this substrate
  // assumes reachable (no IGP layer — see DESIGN.md).
  if (s->ebgp() &&
      config_.neighbor_by_address(update.attrs.next_hop) == nullptr &&
      update.attrs.next_hop != config_.address) {
    ++stats_.import_rejects;
    for (const util::IpPrefix& prefix : update.nlri) {
      if (rib_in.erase(prefix)) run_decision(prefix);
    }
    return;
  }

  Route base;
  base.attrs = update.attrs;
  base.source.peer_node = peer;
  base.source.peer_asn = s->neighbor().asn;
  base.source.peer_router_id = s->peer_router_id();
  base.source.peer_address = s->neighbor().address;
  base.source.ebgp = s->ebgp();
  if (base.source.ebgp) {
    // LOCAL_PREF is only meaningful within an AS (§5.1.5); import policy
    // may assign one.
    base.attrs.local_pref.reset();
  }

  for (const util::IpPrefix& prefix : update.nlri) {
    Route candidate = base;
    candidate.prefix = prefix;
    PolicyOutcome outcome =
        evaluate(s->neighbor().import_policy, std::move(candidate), config_.asn);
    if (outcome.accepted) {
      if (rib_in.upsert(std::move(outcome.route))) run_decision(prefix);
    } else {
      ++stats_.import_rejects;
      if (rib_in.erase(prefix)) run_decision(prefix);
    }
  }
}

std::vector<Route> BgpRouter::collect_candidates(const util::IpPrefix& prefix) const {
  std::vector<Route> candidates;
  // Locally originated network?
  if (std::find(config_.networks.begin(), config_.networks.end(), prefix) !=
      config_.networks.end()) {
    Route local;
    local.prefix = prefix;
    local.attrs.origin = Origin::kIgp;
    local.attrs.next_hop = config_.address;
    local.source.peer_node = kLocalRoute;
    local.source.peer_asn = config_.asn;
    local.source.peer_router_id = config_.router_id;
    local.source.peer_address = config_.address;
    local.source.ebgp = false;
    candidates.push_back(std::move(local));
  }
  for (const auto& [peer, rib] : adj_in_) {
    if (const Route* route = rib.find(prefix)) candidates.push_back(*route);
  }
  return candidates;
}

std::size_t BgpRouter::established_session_count() const {
  std::size_t established = 0;
  for (const auto& [peer, session] : sessions_) {
    if (session->established()) ++established;
  }
  return established;
}

void BgpRouter::for_each_decision(
    const std::function<void(const DecisionView&)>& fn) const {
  std::set<util::IpPrefix> prefixes;
  for (const util::IpPrefix& prefix : config_.networks) prefixes.insert(prefix);
  for (const auto& [peer, rib] : adj_in_) {
    for (const auto& [prefix, route] : rib.table()) prefixes.insert(prefix);
  }
  for (const auto& [prefix, route] : loc_rib_.table()) prefixes.insert(prefix);

  for (const util::IpPrefix& prefix : prefixes) {
    const std::vector<Route> candidates = collect_candidates(prefix);
    DecisionView view;
    view.prefix = prefix;
    view.selected = loc_rib_.find(prefix);
    view.candidates = &candidates;
    fn(view);
  }
}

void BgpRouter::run_decision(const util::IpPrefix& prefix) {
  ++stats_.decision_runs;

  std::vector<Route> candidates = collect_candidates(prefix);

  DecisionOptions options;
  options.always_compare_med = config_.always_compare_med;
  const std::size_t best = select_best(candidates, options);

  const Route* current = loc_rib_.find(prefix);
  if (best == SIZE_MAX) {
    if (loc_rib_.erase(prefix)) {
      ++stats_.best_changes;
      max_best_flips_ = std::max(max_best_flips_, ++best_flips_[prefix]);
      propagate(prefix);
    }
    return;
  }
  if (current != nullptr && *current == candidates[best]) return;
  loc_rib_.upsert(candidates[best]);
  ++stats_.best_changes;
  max_best_flips_ = std::max(max_best_flips_, ++best_flips_[prefix]);
  propagate(prefix);
}

void BgpRouter::propagate(const util::IpPrefix& prefix) {
  for (auto& [peer, session] : sessions_) {
    if (session->established()) export_to_peer(*session, prefix);
  }
}

void BgpRouter::send_full_table(Session& session) {
  for (const auto& [prefix, route] : loc_rib_.table()) {
    export_to_peer(session, prefix);
  }
}

void BgpRouter::export_to_peer(Session& session, const util::IpPrefix& prefix) {
  const sim::NodeId peer = session.peer_node();
  Rib& rib_out = adj_out_[peer];
  const Route* best = loc_rib_.find(prefix);

  const auto withdraw_if_advertised = [&] {
    if (rib_out.erase(prefix)) {
      UpdateMessage update;
      update.withdrawn.push_back(prefix);
      ++stats_.withdraws_sent;
      session_send(peer, Message{update}, /*background=*/false);
    }
  };

  if (best == nullptr) {
    withdraw_if_advertised();
    return;
  }
  // Split horizon: never advertise back to the peer the route came from.
  if (!best->local() && best->source.peer_node == peer) {
    withdraw_if_advertised();
    return;
  }
  // iBGP-learned routes are not reflected to other iBGP peers (§9.2.1,
  // no route-reflection support).
  if (!best->local() && !best->source.ebgp && !session.ebgp()) {
    withdraw_if_advertised();
    return;
  }
  // NO_EXPORT: do not advertise beyond the local AS (RFC 1997).
  if (best->attrs.has_community(well_known::kNoExport) && session.ebgp()) {
    withdraw_if_advertised();
    return;
  }

  PolicyOutcome outcome = evaluate(session.neighbor().export_policy, *best, config_.asn);
  if (!outcome.accepted) {
    withdraw_if_advertised();
    return;
  }

  Route advertised = std::move(outcome.route);
  if (session.ebgp()) {
    advertised.attrs.as_path.prepend(config_.asn);
    advertised.attrs.next_hop = config_.address;
    advertised.attrs.local_pref.reset();  // §5.1.5: not sent on eBGP
  } else {
    // iBGP keeps NEXT_HOP and LOCAL_PREF; ensure LOCAL_PREF present (§5.1.5).
    if (!advertised.attrs.local_pref) {
      advertised.attrs.local_pref = PathAttributes::kDefaultLocalPref;
    }
  }

  const Route* previous = rib_out.find(prefix);
  if (previous != nullptr && previous->attrs == advertised.attrs) return;  // no change

  UpdateMessage update;
  update.nlri.push_back(prefix);
  update.attrs = advertised.attrs;
  rib_out.upsert(advertised);
  ++stats_.updates_sent;
  session_send(peer, Message{update}, /*background=*/false);
}

// ---------------------------------------------------------------------------
// Checkpoint / restore
// ---------------------------------------------------------------------------

void BgpRouter::checkpoint(util::ByteWriter& writer) const {
  // Byte-coded v2 stream: version byte, attribute pool, tagged sections,
  // end tag. The pool is filled while the sections serialize into a scratch
  // writer, then emitted ahead of them (readers need the pool first).
  using ckpt::Tag;
  util::ByteWriter body;
  ckpt::AttrPoolEncoder pool;

  // Sessions (keyed by peer node id for stable identity across clones).
  body.u8(static_cast<std::uint8_t>(Tag::kSessions));
  body.vu32(static_cast<std::uint32_t>(sessions_.size()));
  for (const auto& [peer, session] : sessions_) {
    body.vu32(peer);
    ckpt::write_session_v2(body, *session);
  }
  body.u8(static_cast<std::uint8_t>(Tag::kAdjIn));
  body.vu32(static_cast<std::uint32_t>(adj_in_.size()));
  for (const auto& [peer, rib] : adj_in_) {
    body.vu32(peer);
    ckpt::write_rib_v2(body, rib, pool);
  }
  body.u8(static_cast<std::uint8_t>(Tag::kLocRib));
  ckpt::write_rib_v2(body, loc_rib_, pool);
  body.u8(static_cast<std::uint8_t>(Tag::kAdjOut));
  body.vu32(static_cast<std::uint32_t>(adj_out_.size()));
  for (const auto& [peer, rib] : adj_out_) {
    body.vu32(peer);
    ckpt::write_rib_v2(body, rib, pool);
  }
  // Flip counters travel with the snapshot so clone-side oscillation
  // detection starts from the live system's baseline.
  body.u8(static_cast<std::uint8_t>(Tag::kFlips));
  body.vu32(static_cast<std::uint32_t>(best_flips_.size()));
  for (const auto& [prefix, count] : best_flips_) {
    body.u32(prefix.address().value());
    body.u8(prefix.length());
    body.vu32(count);
  }

  writer.u8(ckpt::kFormatV2);
  pool.emit(writer);
  writer.raw(body.span());
  writer.u8(static_cast<std::uint8_t>(Tag::kEnd));
}

util::Result<std::shared_ptr<const snapshot::DecodedCheckpoint>> BgpRouter::parse(
    util::ByteReader& reader) const {
  g_checkpoint_decodes.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter& decode_counter =
      obs::MetricsRegistry::global().counter(obs::names::kCheckpointDecodes);
  decode_counter.add();

  // Version dispatch on the first byte: v2 byte-coded streams announce
  // themselves with kFormatV2; the snapshot layer's delta envelope must be
  // resolved upstream (PreparedSnapshot::build) — reaching parse with one is
  // an error, not a decode; anything else is a legacy fixed-width stream
  // (whose first byte is the high byte of a u32 session count, i.e. 0x00).
  auto head = reader.peek_u8();
  if (!head) return util::make_error("router.restore.sessions");
  if (head.value() == snapshot::kCheckpointSameAsBaseline) {
    return util::make_error("router.restore.delta_unresolved");
  }
  if (head.value() == ckpt::kFormatV2) return parse_v2(reader);
  return parse_legacy(reader);
}

util::Result<std::shared_ptr<const snapshot::DecodedCheckpoint>> BgpRouter::parse_v2(
    util::ByteReader& reader) const {
  auto state = ckpt::read_router_v2(reader, [this](sim::NodeId peer) {
    return sessions_.find(peer) != sessions_.end();
  });
  if (!state) return state.error();
  auto decoded = std::make_shared<RouterCheckpoint>();
  decoded->sessions = std::move(state.value().sessions);
  decoded->adj_in = std::move(state.value().adj_in);
  decoded->loc_rib = std::move(state.value().loc_rib);
  decoded->adj_out = std::move(state.value().adj_out);
  decoded->best_flips = std::move(state.value().best_flips);
  return std::shared_ptr<const snapshot::DecodedCheckpoint>(std::move(decoded));
}

util::Result<std::shared_ptr<const snapshot::DecodedCheckpoint>> BgpRouter::parse_legacy(
    util::ByteReader& reader) const {
  auto decoded = std::make_shared<RouterCheckpoint>();

  auto session_count = reader.u32();
  if (!session_count) return util::make_error("router.restore.sessions");
  for (std::uint32_t i = 0; i < session_count.value(); ++i) {
    auto peer = reader.u32();
    if (!peer) return util::make_error("router.restore.peer");
    if (sessions_.find(peer.value()) == sessions_.end()) {
      return util::make_error("router.restore.unknown_peer");
    }
    auto checkpoint = Session::parse_checkpoint(reader);
    if (!checkpoint) return checkpoint.error();
    decoded->sessions.emplace_back(peer.value(), checkpoint.value());
  }

  auto in_count = reader.u32();
  if (!in_count) return util::make_error("router.restore.adj_in");
  for (std::uint32_t i = 0; i < in_count.value(); ++i) {
    auto peer = reader.u32();
    if (!peer) return util::make_error("router.restore.adj_in_peer");
    auto rib = Rib::deserialize(reader);
    if (!rib) return util::make_error("router.restore.adj_in_rib", rib.error().to_string());
    decoded->adj_in.emplace_back(peer.value(), std::move(rib).take());
  }

  auto loc = Rib::deserialize(reader);
  if (!loc) return util::make_error("router.restore.loc_rib", loc.error().to_string());
  decoded->loc_rib = std::move(loc).take();

  auto out_count = reader.u32();
  if (!out_count) return util::make_error("router.restore.adj_out");
  for (std::uint32_t i = 0; i < out_count.value(); ++i) {
    auto peer = reader.u32();
    if (!peer) return util::make_error("router.restore.adj_out_peer");
    auto rib = Rib::deserialize(reader);
    if (!rib) return util::make_error("router.restore.adj_out_rib", rib.error().to_string());
    decoded->adj_out.emplace_back(peer.value(), std::move(rib).take());
  }

  auto flip_count = reader.u32();
  if (!flip_count) return util::make_error("router.restore.flips");
  for (std::uint32_t i = 0; i < flip_count.value(); ++i) {
    auto addr = reader.u32();
    auto len = reader.u8();
    auto count = reader.u32();
    if (!addr || !len || !count) return util::make_error("router.restore.flip_entry");
    decoded->best_flips.emplace_back(
        util::IpPrefix{util::IpAddress{addr.value()}, len.value()}, count.value());
  }
  return std::shared_ptr<const snapshot::DecodedCheckpoint>(std::move(decoded));
}

std::uint64_t BgpRouter::encode_checkpoint(util::ByteWriter& writer,
                                           snapshot::SnapshotId this_snapshot,
                                           snapshot::SnapshotId baseline) {
  if (baseline != 0 && last_checkpoint_.snapshot == baseline &&
      last_checkpoint_.version == state_version_) {
    // Nothing checkpointed changed since the baseline captured this router:
    // one byte replaces the whole stream, the recorded full-state hash keeps
    // the cut fingerprint identical to a full encode.
    writer.u8(snapshot::kCheckpointSameAsBaseline);
    last_checkpoint_.snapshot = this_snapshot;
    return last_checkpoint_.hash;
  }
  const std::size_t before = writer.size();
  checkpoint(writer);
  const std::uint64_t hash =
      util::fnv1a(std::span(writer.span()).subspan(before));
  last_checkpoint_ = {this_snapshot, state_version_, hash};
  return hash;
}

util::Status BgpRouter::apply(const snapshot::DecodedCheckpoint& state) {
  const auto* decoded = dynamic_cast<const RouterCheckpoint*>(&state);
  if (decoded == nullptr) return util::make_error("router.apply.wrong_type");
  return apply_state(*decoded);
}

util::Status BgpRouter::restore(util::ByteReader& reader) {
  auto head = reader.peek_u8();
  if (!head) return util::make_error("router.restore.sessions");
  if (head.value() != ckpt::kFormatV2) {
    // Legacy fixed-width streams (and unresolved delta envelopes, which
    // parse rejects with its usual typed error) take the inherited
    // parse + apply path.
    return snapshot::Checkpointable::restore(reader);
  }
  // The fused path is still a decode; both receipts count it like parse.
  g_checkpoint_decodes.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter& decode_counter =
      obs::MetricsRegistry::global().counter(obs::names::kCheckpointDecodes);
  decode_counter.add();
  auto state = ckpt::read_router_v2(reader, [this](sim::NodeId peer) {
    return sessions_.find(peer) != sessions_.end();
  });
  if (!state) return state.error();
  return apply_state(std::move(state).take());
}

template <typename State>
util::Status BgpRouter::apply_state(State&& state) {
  // Owned (rvalue) states surrender their RIBs by move; shared decoded
  // checkpoints are copied. Either way the resulting router state — and the
  // order it is installed in — is identical.
  constexpr bool kOwned = !std::is_const_v<std::remove_reference_t<State>>;
  ++state_version_;  // restore rewrites every piece of checkpointed state

  for (const auto& [peer, checkpoint] : state.sessions) {
    Session* s = session(peer);
    if (s == nullptr) return util::make_error("router.restore.unknown_peer");
    s->apply_checkpoint(checkpoint);
  }

  adj_in_.clear();
  for (auto& [peer, rib] : state.adj_in) {
    if constexpr (kOwned) adj_in_.emplace(peer, std::move(rib));
    else adj_in_.emplace(peer, rib);
  }
  if constexpr (kOwned) loc_rib_ = std::move(state.loc_rib);
  else loc_rib_ = state.loc_rib;
  adj_out_.clear();
  for (auto& [peer, rib] : state.adj_out) {
    if constexpr (kOwned) adj_out_.emplace(peer, std::move(rib));
    else adj_out_.emplace(peer, rib);
  }

  best_flips_.clear();
  max_best_flips_ = 0;
  for (const auto& [prefix, count] : state.best_flips) {
    best_flips_[prefix] = count;
    max_best_flips_ = std::max(max_best_flips_, count);
  }
  return util::Status::success();
}

void BgpRouter::reset_for_reuse() {
  abort_snapshot();
  for (auto& [peer, session] : sessions_) session->reset_for_reuse();
  adj_in_.clear();
  loc_rib_.clear();
  adj_out_.clear();
  best_flips_.clear();
  max_best_flips_ = 0;
  stats_ = {};
  auto_restart_ = true;
  restart_delay_ = sim::kSecond;
  ++state_version_;
  last_checkpoint_ = {};  // arena reuse crosses snapshot lineages: no deltas
}

}  // namespace dice::bgp
