#include "bgp/policy.hpp"

#include "util/strings.hpp"

namespace dice::bgp {

bool Match::matches(const Route& route) const noexcept {
  switch (kind) {
    case Kind::kAny:
      return true;
    case Kind::kPrefixExact:
      return route.prefix == prefix;
    case Kind::kPrefixOrLonger:
      return prefix.contains(route.prefix);
    case Kind::kAsPathContains:
      return route.attrs.as_path.contains(asn);
    case Kind::kOriginatedBy:
      return route.attrs.as_path.origin_asn() == asn;
    case Kind::kCommunity:
      return route.attrs.has_community(community);
    case Kind::kNextHop:
      return route.attrs.next_hop == address;
  }
  return false;
}

std::string Match::to_string() const {
  switch (kind) {
    case Kind::kAny: return "any";
    case Kind::kPrefixExact: return "prefix in " + prefix.to_string();
    case Kind::kPrefixOrLonger: return "prefix in " + prefix.to_string() + "+";
    case Kind::kAsPathContains: return util::format("aspath ~ %u", asn);
    case Kind::kOriginatedBy: return util::format("originated %u", asn);
    case Kind::kCommunity: return "community " + community_to_string(community);
    case Kind::kNextHop: return "nexthop " + address.to_string();
  }
  return "?";
}

std::string Action::to_string() const {
  switch (kind) {
    case Kind::kSetLocalPref: return util::format("localpref %u", value);
    case Kind::kSetMed: return util::format("med %u", value);
    case Kind::kClearMed: return "med clear";
    case Kind::kAddCommunity: return "community add " + community_to_string(value);
    case Kind::kRemoveCommunity: return "community remove " + community_to_string(value);
    case Kind::kPrepend: return util::format("prepend %u", value);
  }
  return "?";
}

bool PolicyRule::matches_route(const Route& route) const noexcept {
  for (const Match& m : matches) {
    if (!m.matches(route)) return false;
  }
  return true;
}

std::string PolicyRule::to_string() const {
  std::string out = "if ";
  if (matches.empty()) {
    out.append("any");
  } else {
    for (std::size_t i = 0; i < matches.size(); ++i) {
      if (i != 0) out.append(" and ");
      out.append(matches[i].to_string());
    }
  }
  out.append(" then { ");
  for (const Action& a : actions) out.append(a.to_string()).append("; ");
  switch (verdict) {
    case Verdict::kAccept: out.append("accept; "); break;
    case Verdict::kReject: out.append("reject; "); break;
    case Verdict::kNext: break;
  }
  out.append("}");
  return out;
}

namespace {

void apply_action(const Action& action, Route& route, Asn local_asn) {
  switch (action.kind) {
    case Action::Kind::kSetLocalPref:
      route.attrs.local_pref = action.value;
      break;
    case Action::Kind::kSetMed:
      route.attrs.med = action.value;
      break;
    case Action::Kind::kClearMed:
      route.attrs.med.reset();
      break;
    case Action::Kind::kAddCommunity:
      route.attrs.add_community(action.value);
      break;
    case Action::Kind::kRemoveCommunity:
      route.attrs.remove_community(action.value);
      break;
    case Action::Kind::kPrepend:
      route.attrs.as_path.prepend(local_asn, action.value);
      break;
  }
}

}  // namespace

PolicyOutcome evaluate(const Policy& policy, Route route, Asn local_asn) {
  for (std::size_t i = 0; i < policy.rules.size(); ++i) {
    const PolicyRule& rule = policy.rules[i];
    if (!rule.matches_route(route)) continue;
    for (const Action& action : rule.actions) apply_action(action, route, local_asn);
    switch (rule.verdict) {
      case Verdict::kAccept:
        return PolicyOutcome{true, std::move(route), i};
      case Verdict::kReject:
        return PolicyOutcome{false, {}, i};
      case Verdict::kNext:
        break;  // actions applied, keep scanning
    }
  }
  if (policy.default_accept) return PolicyOutcome{true, std::move(route), SIZE_MAX};
  return PolicyOutcome{false, {}, SIZE_MAX};
}

}  // namespace dice::bgp
