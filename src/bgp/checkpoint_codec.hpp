// Byte-coded checkpoint format (v2): the compact tagged-section stream
// RouterCheckpoint/SessionCheckpoint serialize into since the delta-snapshot
// work. The shape follows the tag + variable-immediate idiom: a leading
// format-version byte, then self-describing sections (tag byte + varint
// payload), closed by an end tag. Counts, ids and pool indices are LEB128
// varints (util::ByteWriter::vu32/vu64); path attributes are pool-indexed so
// a checkpoint carrying the same AS-path/community set on hundreds of routes
// writes it exactly once.
//
// Streams whose first byte is not kFormatV2 are legacy fixed-width
// checkpoints and keep parsing through the v1 code path (bgp/rib.cpp,
// Session::parse_checkpoint) — see docs/SNAPSHOT_FORMAT.md for the full
// layout and compatibility contract.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bgp/rib.hpp"
#include "bgp/session.hpp"

namespace dice::bgp::ckpt {

/// First byte of a v2 checkpoint stream. Legacy streams start with the high
/// byte of a u32 session count (always 0x00 in practice); the snapshot
/// layer's "same as baseline" envelope claims 0x03 (snapshot/checkpoint.hpp).
inline constexpr std::uint8_t kFormatV2 = 0x02;

/// Section tags. Unknown tags are a decode error (stable code
/// `router.restore.unknown_tag`), which is what keeps the format evolvable:
/// a reader that does not know a tag refuses the stream instead of
/// misinterpreting it.
enum class Tag : std::uint8_t {
  kEnd = 0,
  kAttrPool = 1,
  kSessions = 2,
  kAdjIn = 3,
  kLocRib = 4,
  kAdjOut = 5,
  kFlips = 6,
};

/// Encode-side attribute pool: dedupes PathAttributes by their serialized
/// v2 bytes (PathAttributes has no operator<; the byte form is the canonical
/// identity). Indices are assigned in first-use order so the emitted pool is
/// deterministic for a deterministic route iteration order.
class AttrPoolEncoder {
 public:
  /// Returns the pool index for `attrs`, serializing it on first use.
  [[nodiscard]] std::uint32_t index_of(const PathAttributes& attrs);

  /// Emits the kTagAttrPool section (tag + vu32 count + entries).
  void emit(util::ByteWriter& writer) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::unordered_map<std::string, std::uint32_t> index_;
  std::vector<std::string> entries_;  ///< serialized v2 attr bytes, pool order
};

/// Decode-side pool: attributes parsed once, referenced by index.
class AttrPoolDecoder {
 public:
  [[nodiscard]] util::Result<const PathAttributes*> at(std::uint32_t index) const;
  [[nodiscard]] static util::Result<AttrPoolDecoder> parse(util::ByteReader& reader);

 private:
  std::vector<PathAttributes> attrs_;
};

// --- v2 field codecs --------------------------------------------------------

void write_attrs_v2(util::ByteWriter& writer, const PathAttributes& attrs);
[[nodiscard]] util::Result<PathAttributes> read_attrs_v2(util::ByteReader& reader);

void write_route_v2(util::ByteWriter& writer, const Route& route, AttrPoolEncoder& pool);
[[nodiscard]] util::Result<Route> read_route_v2(util::ByteReader& reader,
                                                const AttrPoolDecoder& pool);

void write_rib_v2(util::ByteWriter& writer, const Rib& rib, AttrPoolEncoder& pool);
[[nodiscard]] util::Result<Rib> read_rib_v2(util::ByteReader& reader,
                                            const AttrPoolDecoder& pool);

void write_session_v2(util::ByteWriter& writer, const Session& session);
/// Same byte layout, from a typed checkpoint — for engines whose per-peer
/// FSM is not a Session object (bgp2) yet must emit the identical stream.
void write_session_v2(util::ByteWriter& writer, const SessionCheckpoint& checkpoint);
[[nodiscard]] util::Result<SessionCheckpoint> read_session_v2(util::ByteReader& reader);

// --- full-stream router codec -----------------------------------------------

/// Decoded form of a complete v2 router stream: every tagged section the
/// format carries. This is the interchange shape shared by all node
/// implementations — each engine's Checkpointable::parse wraps it in its own
/// snapshot::DecodedCheckpoint subclass.
struct RouterStateV2 {
  std::vector<std::pair<sim::NodeId, SessionCheckpoint>> sessions;
  std::vector<std::pair<sim::NodeId, Rib>> adj_in;
  Rib loc_rib;
  std::vector<std::pair<sim::NodeId, Rib>> adj_out;
  std::vector<std::pair<util::IpPrefix, std::uint32_t>> best_flips;
};

/// Parses a complete v2 stream with the reader positioned at the kFormatV2
/// version byte. `known_peer` lets the caller reject session entries for
/// peers it has no FSM for (stable code `router.restore.unknown_peer`).
[[nodiscard]] util::Result<RouterStateV2> read_router_v2(
    util::ByteReader& reader, const std::function<bool(sim::NodeId)>& known_peer);

}  // namespace dice::bgp::ckpt
