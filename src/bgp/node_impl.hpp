// NodeImplementation: the boundary between the DiCE harness and a BGP
// engine. The paper tests *federated, heterogeneous* systems — nodes built
// by different parties that interoperate over the wire but share no code.
// Everything above this interface (dice::System, the checks layer, the
// exploration matrix) talks to nodes only through it, so an independently
// structured engine (src/bgp2/) can sit in the same simulated network as
// the reference BgpRouter and be cloned, checkpointed and checked by the
// exact same machinery.
//
// What a conforming implementation must guarantee (docs/HETEROGENEITY.md):
//   - speak the shared wire codec (bgp/codec.hpp) over the frame transport;
//   - implement snapshot::Checkpointable with the v2 tagged-section format
//     (bgp/checkpoint_codec.hpp) including the delta-baseline envelope, so
//     prepared clones and delta snapshots work unchanged;
//   - keep every observable surface below deterministic for a fixed event
//     order (no wall clock, no unseeded randomness);
//   - expose its decision process through for_each_decision so the
//     differential checker can replay each choice against the reference
//     decision procedure.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "bgp/config.hpp"
#include "bgp/rib.hpp"
#include "sim/network.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/participant.hpp"

namespace dice::bgp {

/// Registry id of the reference implementation (bgp/router.hpp).
inline constexpr std::string_view kBgpRouterImplementationId = "bgp";

/// Normalized summary of a node's selected routes: order-independent
/// content hash + route count. Two conforming implementations fed the same
/// routes must converge to equal digests; divergence is the federated
/// fault signal (dice::DifferentialCheck).
struct RibDigest {
  std::uint64_t hash = 0;
  std::size_t routes = 0;

  bool operator==(const RibDigest&) const = default;
};

class NodeImplementation : public snapshot::SnapshotParticipant,
                           public snapshot::Checkpointable {
 public:
  NodeImplementation(sim::Network& network, sim::NodeId id)
      : snapshot::SnapshotParticipant(network, id) {}

  /// Counters every engine maintains; checkers read them implementation-
  /// agnostically (crash detection via handler_crashes, fuzz-reject
  /// accounting via decode_failures, ...).
  struct Stats {
    std::uint64_t updates_received = 0;
    std::uint64_t updates_sent = 0;
    std::uint64_t withdraws_sent = 0;
    std::uint64_t decision_runs = 0;
    std::uint64_t best_changes = 0;
    std::uint64_t import_rejects = 0;
    std::uint64_t loop_rejects = 0;
    std::uint64_t decode_failures = 0;
    std::uint64_t handler_crashes = 0;
  };

  /// One decision-process outcome: the prefix, what the node selected
  /// (nullptr = nothing selected), and the candidate set it chose from.
  /// Candidates carry the full Route (post import policy) so the checker
  /// can rerun the reference decision procedure on them.
  struct DecisionView {
    util::IpPrefix prefix;
    const Route* selected = nullptr;
    const std::vector<Route>* candidates = nullptr;
  };

  /// Stable registry id ("bgp", "fsm", ...). Greppable constants live next
  /// to each engine (kBgpRouterImplementationId, kFsmEngineImplementationId).
  [[nodiscard]] virtual std::string_view implementation_id() const noexcept = 0;

  /// Originates configured networks and starts all neighbor sessions.
  virtual void start() = 0;

  [[nodiscard]] virtual const RouterConfig& config() const noexcept = 0;
  [[nodiscard]] virtual const Rib& loc_rib() const noexcept = 0;
  [[nodiscard]] virtual const std::map<util::IpPrefix, std::uint32_t>& best_flips()
      const noexcept = 0;
  /// Highest per-prefix best-route flip count since the last reset — O(1);
  /// the oscillation early-exit polls it every convergence round.
  [[nodiscard]] virtual std::uint32_t max_best_flips() const noexcept = 0;
  virtual void reset_flip_counters() = 0;
  [[nodiscard]] virtual const Stats& stats() const noexcept = 0;
  [[nodiscard]] virtual std::size_t established_session_count() const = 0;

  /// Disables automatic session restart (clones leave crashed sessions
  /// observable for the crash checker).
  virtual void set_auto_restart(bool enabled) noexcept = 0;
  /// Administratively resets one session (the paper's "local session
  /// reset" scenario); the session auto-restarts after a delay.
  virtual void reset_session(sim::NodeId peer) = 0;
  /// Returns the node to its just-constructed state for clone-arena reuse.
  virtual void reset_for_reuse() = 0;

  /// Normalized selected-route summary for cross-implementation comparison.
  [[nodiscard]] virtual RibDigest rib_digest() const {
    return RibDigest{loc_rib().content_hash(), loc_rib().size()};
  }

  /// Invokes `fn` once per prefix the node holds an opinion about (locally
  /// originated, learned, or selected), in ascending prefix order. The
  /// DecisionView pointers are valid only for the duration of the call.
  virtual void for_each_decision(
      const std::function<void(const DecisionView&)>& fn) const = 0;

 protected:
  [[nodiscard]] snapshot::Checkpointable& checkpointable() override { return *this; }
};

/// Process-wide factory table, keyed by implementation id. Blueprints name
/// implementations by id; dice::System resolves them here at construction.
/// Built-ins ("bgp", "fsm") are registered on first use; additional
/// engines may register before any System is built.
class NodeImplementationRegistry {
 public:
  using AddressBook = std::shared_ptr<const std::map<util::IpAddress, sim::NodeId>>;
  using Factory = std::function<std::unique_ptr<NodeImplementation>(
      sim::Network&, sim::NodeId, RouterConfig, AddressBook)>;

  [[nodiscard]] static NodeImplementationRegistry& instance();

  /// Replaces any existing factory under `id`.
  void register_factory(std::string id, Factory factory);
  [[nodiscard]] bool contains(std::string_view id) const;
  /// Registered ids in sorted order (campaign validation, docs).
  [[nodiscard]] std::vector<std::string> ids() const;
  /// Returns nullptr for an unknown id.
  [[nodiscard]] std::unique_ptr<NodeImplementation> create(
      std::string_view id, sim::Network& network, sim::NodeId node,
      RouterConfig config, AddressBook address_book) const;

 private:
  NodeImplementationRegistry();

  mutable std::mutex mutex_;
  std::map<std::string, Factory, std::less<>> factories_;
};

}  // namespace dice::bgp
