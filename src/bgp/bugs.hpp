// Injectable programming errors for the paper's third fault class.
//
// The DiCE paper detects "faults that can occur due to programming errors"
// in the BIRD UPDATE-handling code. Since our substrate is written from
// scratch, reproducible bugs are *injected* behind a per-router mask: with
// a bit clear the code handles the input correctly (rejects it with the
// RFC-prescribed NOTIFICATION); with the bit set the faulty code path runs
// and raises concolic::CrashSignal — which is what the engine hunts for in
// bench_e3_program_error. Each bug mirrors a realistic parser defect.
#pragma once

#include <cstdint>

namespace dice::bgp {

namespace bugs {

/// COMMUNITY attribute length not a multiple of 4 triggers a simulated
/// out-of-bounds read instead of AttributeLengthError.
inline constexpr std::uint32_t kCommunityLength = 1u << 0;

/// AS_PATH segment with a zero ASN count trips a loop guard instead of
/// MalformedAsPath (a classic never-advances parsing loop).
inline constexpr std::uint32_t kAsPathZeroSegment = 1u << 1;

/// MED of 0xffffffff overflows a preference computation (+1 wraps to 0).
inline constexpr std::uint32_t kMedOverflow = 1u << 2;

/// Decision-process defect, not a codec crash: among candidates tied on
/// local preference the faulty code prefers the *longer* AS path (an
/// inverted comparison). Only the bgp2 FSM engine honors this bit — the
/// reference BgpRouter decision process ignores it — so setting it on a
/// node running the "fsm" implementation makes the two engines disagree
/// and exercises the differential check (kImplementationDivergence).
inline constexpr std::uint32_t kLongPathPreferred = 1u << 3;

}  // namespace bugs

struct DecodeOptions {
  std::uint32_t bug_mask = 0;
};

}  // namespace dice::bgp
