// Routing policy engine: ordered rules of (match conjunction -> actions ->
// verdict), evaluated on import and export. This is the "configuration"
// whose interpretation DiCE's instrumented run records as path constraints
// (paper §3: "the explored execution paths are comprehensive of both code
// and configuration") — sym_policy.cpp evaluates the same structures over
// symbolic routes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/rib.hpp"
#include "util/ip.hpp"

namespace dice::bgp {

enum class PolicyDirection : std::uint8_t { kImport, kExport };

struct Match {
  enum class Kind : std::uint8_t {
    kAny,
    kPrefixExact,      ///< NLRI equals `prefix`
    kPrefixOrLonger,   ///< NLRI covered by `prefix` (the BIRD "+" form)
    kAsPathContains,   ///< `asn` appears anywhere in AS_PATH
    kOriginatedBy,     ///< `asn` is the origin (rightmost) AS
    kCommunity,        ///< route carries `community`
    kNextHop,          ///< NEXT_HOP equals `address`
  };

  Kind kind = Kind::kAny;
  util::IpPrefix prefix;
  Asn asn = 0;
  Community community = 0;
  util::IpAddress address;

  [[nodiscard]] bool matches(const Route& route) const noexcept;
  [[nodiscard]] std::string to_string() const;

  bool operator==(const Match&) const = default;
};

struct Action {
  enum class Kind : std::uint8_t {
    kSetLocalPref,
    kSetMed,
    kClearMed,
    kAddCommunity,
    kRemoveCommunity,
    kPrepend,  ///< prepend own ASN `value` times (applied with evaluator's asn)
  };

  Kind kind = Kind::kSetLocalPref;
  std::uint32_t value = 0;

  [[nodiscard]] std::string to_string() const;

  bool operator==(const Action&) const = default;
};

enum class Verdict : std::uint8_t { kAccept, kReject, kNext };

struct PolicyRule {
  std::vector<Match> matches;   ///< conjunction; empty means "always"
  std::vector<Action> actions;  ///< applied when matched
  Verdict verdict = Verdict::kNext;

  [[nodiscard]] bool matches_route(const Route& route) const noexcept;
  [[nodiscard]] std::string to_string() const;

  bool operator==(const PolicyRule&) const = default;
};

struct Policy {
  std::vector<PolicyRule> rules;
  /// Verdict when no rule produced kAccept/kReject. BGP convention: import
  /// policies often default-accept inside a lab, default-reject for export.
  bool default_accept = false;

  bool operator==(const Policy&) const = default;

  [[nodiscard]] static Policy accept_all() {
    Policy p;
    p.default_accept = true;
    return p;
  }
  [[nodiscard]] static Policy reject_all() { return Policy{}; }
};

struct PolicyOutcome {
  bool accepted = false;
  Route route;                 ///< with actions applied (valid when accepted)
  std::size_t matched_rule = SIZE_MAX;  ///< index of the deciding rule
};

/// Evaluates `policy` over `route`. `local_asn` parameterizes kPrepend.
[[nodiscard]] PolicyOutcome evaluate(const Policy& policy, Route route, Asn local_asn);

}  // namespace dice::bgp
