// Router configuration: the model consumed by BgpRouter, plus a parser and
// renderer for a BIRD-flavored text format. Operator mistakes — the paper's
// third fault class — enter the system here (e.g. an extra `network`
// statement originating someone else's prefix, or a botched filter).
//
// Example:
//
//   router {
//     name r1;
//     id 10.0.0.1;
//     as 65001;
//     address 10.0.0.1;
//     hold 90;
//     network 10.1.0.0/16;
//     neighbor 10.0.0.2 {
//       as 65002;
//       description "transit provider";
//       import {
//         if prefix in 192.168.0.0/16+ then reject;
//         if community (65001,666) then reject;
//         then { localpref 120; accept; }
//       }
//       export {
//         if community (65001,100) then accept;
//         then reject;
//       }
//     }
//   }
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bgp/policy.hpp"
#include "bgp/types.hpp"
#include "util/ip.hpp"
#include "util/result.hpp"

namespace dice::bgp {

struct NeighborConfig {
  util::IpAddress address;
  Asn asn = 0;
  std::string description;
  Policy import_policy = Policy::accept_all();
  Policy export_policy = Policy::accept_all();

  bool operator==(const NeighborConfig&) const = default;
};

struct RouterConfig {
  std::string name;
  RouterId router_id = 0;
  Asn asn = 0;
  util::IpAddress address;
  std::uint16_t hold_time = 90;  ///< seconds; 0 disables keepalive/hold timers
  std::vector<util::IpPrefix> networks;  ///< locally originated prefixes
  std::vector<NeighborConfig> neighbors;
  bool always_compare_med = false;
  std::uint32_t bug_mask = 0;  ///< injected programming errors (bugs.hpp)
  /// RFC 6793 4-octet AS support. True (default): the speaker announces its
  /// real ASN via the OPEN AS4 capability when it exceeds 16 bits and
  /// understands the capability from peers. False models a legacy 2-octet
  /// speaker: capabilities are ignored and a 4-byte neighbor is accepted
  /// through its AS_TRANS placeholder.
  bool as4_capable = true;

  [[nodiscard]] const NeighborConfig* neighbor_by_address(util::IpAddress addr) const;
  [[nodiscard]] const NeighborConfig* neighbor_by_asn(Asn asn) const;

  bool operator==(const RouterConfig&) const = default;
};

/// Parses one `router { ... }` block.
[[nodiscard]] util::Result<RouterConfig> parse_config(std::string_view text);

/// Renders a config back to the text format (parse ∘ render == identity,
/// covered by a round-trip property test).
[[nodiscard]] std::string render_config(const RouterConfig& config);

/// Structural sanity checks an operator tool would run before deploying:
/// nonzero ASN/router id, neighbor ASNs distinct from invalid, no duplicate
/// neighbor addresses, prefixes with zeroed host bits.
[[nodiscard]] util::Status validate_config(const RouterConfig& config);

}  // namespace dice::bgp
