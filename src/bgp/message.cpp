#include "bgp/message.hpp"

#include "util/strings.hpp"

namespace dice::bgp {

std::string UpdateMessage::to_string() const {
  std::string out = "UPDATE";
  if (!withdrawn.empty()) {
    out.append(" withdraw{");
    for (std::size_t i = 0; i < withdrawn.size(); ++i) {
      if (i != 0) out.push_back(' ');
      out.append(withdrawn[i].to_string());
    }
    out.push_back('}');
  }
  if (!nlri.empty()) {
    out.append(" announce{");
    for (std::size_t i = 0; i < nlri.size(); ++i) {
      if (i != 0) out.push_back(' ');
      out.append(nlri[i].to_string());
    }
    out.append("} ");
    out.append(attrs.to_string());
  }
  return out;
}

std::string NotificationMessage::to_string() const {
  const char* name = "?";
  switch (code) {
    case NotifCode::kMessageHeaderError: name = "MessageHeaderError"; break;
    case NotifCode::kOpenMessageError: name = "OpenMessageError"; break;
    case NotifCode::kUpdateMessageError: name = "UpdateMessageError"; break;
    case NotifCode::kHoldTimerExpired: name = "HoldTimerExpired"; break;
    case NotifCode::kFsmError: name = "FsmError"; break;
    case NotifCode::kCease: name = "Cease"; break;
  }
  return util::format("NOTIFICATION %s subcode=%u", name, subcode);
}

MessageType type_of(const Message& msg) noexcept {
  struct Visitor {
    MessageType operator()(const OpenMessage&) const noexcept { return MessageType::kOpen; }
    MessageType operator()(const UpdateMessage&) const noexcept { return MessageType::kUpdate; }
    MessageType operator()(const NotificationMessage&) const noexcept {
      return MessageType::kNotification;
    }
    MessageType operator()(const KeepaliveMessage&) const noexcept {
      return MessageType::kKeepalive;
    }
  };
  return std::visit(Visitor{}, msg);
}

std::string to_string(const Message& msg) {
  struct Visitor {
    std::string operator()(const OpenMessage& m) const {
      return util::format("OPEN as=%u hold=%u id=%s", m.my_asn, m.hold_time,
                          router_id_to_string(m.router_id).c_str());
    }
    std::string operator()(const UpdateMessage& m) const { return m.to_string(); }
    std::string operator()(const NotificationMessage& m) const { return m.to_string(); }
    std::string operator()(const KeepaliveMessage&) const { return "KEEPALIVE"; }
  };
  return std::visit(Visitor{}, msg);
}

}  // namespace dice::bgp
