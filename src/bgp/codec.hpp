// BGP-4 wire codec (RFC 4271 §4). One frame on the simulated transport
// carries exactly one BGP message including the 19-byte header.
//
// decode() is strict: every validation failure maps to the NOTIFICATION
// error code/subcode the RFC prescribes (see error_to_notification), which
// is how a receiving session decides to reset. The decoder is also the
// concrete twin of the instrumented symbolic decoder (sym_update.hpp); a
// differential property test keeps the two in agreement.
#pragma once

#include <optional>
#include <span>

#include "bgp/bugs.hpp"
#include "bgp/message.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace dice::bgp {

// --- RFC 6793: 4-octet AS numbers -------------------------------------------
// The AS_PATH wire format stays 2-octet (a deliberate scope cut; 4-byte
// ASNs appear truncated in transit paths). A 4-byte speaker announces its
// real ASN through the OPEN Capabilities optional parameter and places
// AS_TRANS in the 2-octet "My Autonomous System" field.
inline constexpr std::uint8_t kCapabilitiesOptParam = 2;
inline constexpr std::uint8_t kAs4Capability = 65;
inline constexpr Asn kAsTrans = 23456;

/// Appends a Capabilities optional parameter carrying the AS4 capability
/// (code 65) with the full 4-octet ASN, ready for OpenMessage::opt_params.
void append_as4_capability(std::vector<std::uint8_t>& opt_params, Asn asn);

/// Scans OPEN optional parameters for the AS4 capability. Unknown
/// parameters and capabilities are skipped (they are carried opaquely);
/// a malformed TLV ends the scan with nullopt.
[[nodiscard]] std::optional<Asn> find_as4_capability(
    std::span<const std::uint8_t> opt_params);

/// Serializes a message with header. Returns an error when the message
/// would exceed kMaxMessageLength.
[[nodiscard]] util::Result<util::Bytes> encode(const Message& msg);

/// Parses one complete message (header + body). The span must contain
/// exactly one message (`data.size()` equals the header length field).
/// `options.bug_mask` enables injected parser defects (bugs.hpp) that raise
/// concolic::CrashSignal instead of returning the RFC error.
[[nodiscard]] util::Result<Message> decode(std::span<const std::uint8_t> data,
                                           const DecodeOptions& options = {});

/// Maps a decode error to the NOTIFICATION the speaker must send (§6).
[[nodiscard]] NotificationMessage error_to_notification(const util::Error& error);

/// Wire helpers shared with the symbolic decoder and the fuzzer grammar.
void encode_prefix(util::ByteWriter& writer, const util::IpPrefix& prefix);
[[nodiscard]] util::Result<util::IpPrefix> decode_prefix(util::ByteReader& reader);
void encode_attributes(util::ByteWriter& writer, const PathAttributes& attrs);

}  // namespace dice::bgp
