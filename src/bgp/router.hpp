// BgpRouter: a complete BGP speaker wired into the simulated network.
//
// Responsibilities:
//   - per-neighbor sessions (session.hpp) over the frame transport;
//   - UPDATE processing: import policy -> Adj-RIB-In -> decision process ->
//     Loc-RIB -> export policy -> Adj-RIB-Out deltas -> UPDATEs out;
//   - origination of configured `network` prefixes;
//   - AS-path loop rejection, NO_EXPORT handling, split horizon;
//   - checkpoint/restore of all dynamic state (snapshot participant);
//   - fault surface: handler crashes (injected bugs) are caught, counted
//     and surfaced to DiCE's checkers; per-prefix best-route flip counters
//     feed the oscillation (policy conflict) checker.
#pragma once

#include <map>
#include <memory>

#include "bgp/codec.hpp"
#include "bgp/config.hpp"
#include "bgp/decision.hpp"
#include "bgp/node_impl.hpp"
#include "bgp/rib.hpp"
#include "bgp/session.hpp"

namespace dice::bgp {

/// Total number of checkpoint decodes (BgpRouter::parse calls) performed in
/// this process — the receipt that the prepared pipeline decodes once, not
/// once per clone (bench_clone_restore reads the deltas).
[[nodiscard]] std::uint64_t checkpoint_decode_count() noexcept;

/// Typed form of a router checkpoint: everything BgpRouter::checkpoint
/// serializes, parsed once and shared read-only by all clones restoring
/// from the same snapshot.
struct RouterCheckpoint final : snapshot::DecodedCheckpoint {
  std::vector<std::pair<sim::NodeId, SessionCheckpoint>> sessions;
  std::vector<std::pair<sim::NodeId, Rib>> adj_in;
  Rib loc_rib;
  std::vector<std::pair<sim::NodeId, Rib>> adj_out;
  std::vector<std::pair<util::IpPrefix, std::uint32_t>> best_flips;
};

class BgpRouter final : public NodeImplementation, public SessionHost {
 public:
  /// `address_book` maps neighbor IP addresses to sim node ids (the
  /// topology's wiring); neighbors without an entry are ignored. The shared
  /// form lets every router of a system (and every clone of a blueprint)
  /// reference one immutable book instead of copying it per router.
  BgpRouter(sim::Network& network, sim::NodeId id, RouterConfig config,
            std::shared_ptr<const std::map<util::IpAddress, sim::NodeId>> address_book);
  BgpRouter(sim::Network& network, sim::NodeId id, RouterConfig config,
            std::map<util::IpAddress, sim::NodeId> address_book);

  // --- NodeImplementation ---------------------------------------------------
  [[nodiscard]] std::string_view implementation_id() const noexcept override {
    return kBgpRouterImplementationId;
  }

  /// Originates configured networks and starts all neighbor sessions.
  void start() override;

  // --- introspection (tests, checkers, benches) ----------------------------
  [[nodiscard]] const RouterConfig& config() const noexcept override { return config_; }
  [[nodiscard]] const Rib& loc_rib() const noexcept override { return loc_rib_; }
  [[nodiscard]] const Rib* adj_rib_in(sim::NodeId peer) const;
  [[nodiscard]] const Rib* adj_rib_out(sim::NodeId peer) const;
  [[nodiscard]] Session* session(sim::NodeId peer);
  [[nodiscard]] const std::map<sim::NodeId, std::unique_ptr<Session>>& sessions() const noexcept {
    return sessions_;
  }
  [[nodiscard]] const std::map<util::IpPrefix, std::uint32_t>& best_flips()
      const noexcept override {
    return best_flips_;
  }

  [[nodiscard]] const Stats& stats() const noexcept override { return stats_; }
  void reset_flip_counters() override {
    best_flips_.clear();
    max_best_flips_ = 0;
    ++state_version_;  // flip counters are checkpointed state
  }
  /// Highest per-prefix best-route flip count seen since the counters were
  /// last reset — O(1), maintained incrementally so the oscillation
  /// early-exit poll (System::converge_bounded) stays cheap.
  [[nodiscard]] std::uint32_t max_best_flips() const noexcept override {
    return max_best_flips_;
  }
  [[nodiscard]] std::size_t established_session_count() const override;

  /// Replays the decision process: for every prefix with local origination,
  /// an Adj-RIB-In entry or a Loc-RIB entry, rebuilds the exact candidate
  /// set run_decision() uses and reports it with the current selection.
  void for_each_decision(
      const std::function<void(const DecisionView&)>& fn) const override;

  /// Administratively resets one session (the paper's "local session reset"
  /// emergent-behavior scenario); the session auto-restarts after a delay.
  void reset_session(sim::NodeId peer) override;

  /// Disables automatic session restart (used by clones during exploration
  /// so a crash leaves an observable dead session).
  void set_auto_restart(bool enabled) noexcept override { auto_restart_ = enabled; }

  // --- Checkpointable -------------------------------------------------------
  // checkpoint() emits the byte-coded v2 format (bgp/checkpoint_codec.hpp);
  // parse() additionally accepts legacy fixed-width streams (first byte !=
  // kFormatV2), so checkpoints captured before the format change restore.
  void checkpoint(util::ByteWriter& writer) const override;
  /// One-shot restore, fused for v2 streams: the decoded sections are MOVED
  /// into this router instead of being materialized as a shareable
  /// RouterCheckpoint and then deep-copied — half the per-route cost when
  /// the decode feeds exactly one instance (System::reset_from_raw, the
  /// warm-start resume from a persisted cut). Legacy streams fall back to
  /// the inherited parse + apply. State-identical to that pair either way.
  [[nodiscard]] util::Status restore(util::ByteReader& reader) override;
  [[nodiscard]] util::Result<std::shared_ptr<const snapshot::DecodedCheckpoint>> parse(
      util::ByteReader& reader) const override;
  [[nodiscard]] util::Status apply(const snapshot::DecodedCheckpoint& state) override;
  /// Delta-aware encode: when `baseline` is the snapshot this router last
  /// encoded into and no checkpointed state changed since (tracked by a
  /// monotonic version counter bumped on every mutation), writes the
  /// one-byte "same as baseline" envelope. Falls back to a full v2
  /// checkpoint otherwise. Returned hash is always the full-state hash.
  [[nodiscard]] std::uint64_t encode_checkpoint(util::ByteWriter& writer,
                                                snapshot::SnapshotId this_snapshot,
                                                snapshot::SnapshotId baseline) override;
  /// Monotonic churn counter: bumps whenever checkpointed state (sessions,
  /// RIBs, flip counters) changes. Equal versions => byte-identical
  /// checkpoints. Exposed for tests and the snapshot-scale bench.
  [[nodiscard]] std::uint64_t state_version() const noexcept { return state_version_; }

  /// Returns the router to its just-constructed state (empty RIBs, Idle
  /// sessions, zeroed stats/flip counters, aborted snapshot bookkeeping) so
  /// a clone-arena System can be re-seeded with apply() instead of being
  /// reconstructed.
  void reset_for_reuse() override;

  // --- SessionHost ----------------------------------------------------------
  void session_send(sim::NodeId peer, const Message& msg, bool background) override;
  void session_established(sim::NodeId peer) override;
  void session_down(sim::NodeId peer, const std::string& reason) override;
  void session_update(sim::NodeId peer, const UpdateMessage& update) override;
  void session_state_dirty() override { ++state_version_; }
  [[nodiscard]] sim::Simulator& session_simulator() override {
    return network().simulator();
  }

 protected:
  // --- SnapshotParticipant --------------------------------------------------
  void deliver_data(sim::NodeId from, const util::Bytes& payload) override;

 private:
  [[nodiscard]] util::Result<std::shared_ptr<const snapshot::DecodedCheckpoint>> parse_v2(
      util::ByteReader& reader) const;
  /// Shared tail of apply() and the fused restore(): installs a decoded v2
  /// state. `State` is `const RouterCheckpoint&` (copy: the decoded form is
  /// shared across clones) or `ckpt::RouterStateV2&&` (move: uniquely owned
  /// by a one-shot restore).
  template <typename State>
  [[nodiscard]] util::Status apply_state(State&& state);
  [[nodiscard]] util::Result<std::shared_ptr<const snapshot::DecodedCheckpoint>>
  parse_legacy(util::ByteReader& reader) const;
  void originate_networks();
  void process_update(sim::NodeId peer, const UpdateMessage& update);
  /// The decision process's candidate set for `prefix`: the locally
  /// originated route (if configured) plus every Adj-RIB-In entry. Shared
  /// by run_decision() and for_each_decision() so the differential checker
  /// replays exactly what the decision saw.
  [[nodiscard]] std::vector<Route> collect_candidates(const util::IpPrefix& prefix) const;
  /// Re-runs the decision process for `prefix`; propagates on change.
  void run_decision(const util::IpPrefix& prefix);
  void propagate(const util::IpPrefix& prefix);
  void export_to_peer(Session& session, const util::IpPrefix& prefix);
  void send_full_table(Session& session);
  void schedule_restart(sim::NodeId peer);

  RouterConfig config_;
  std::shared_ptr<const std::map<util::IpAddress, sim::NodeId>> address_book_;
  std::map<sim::NodeId, std::unique_ptr<Session>> sessions_;

  std::map<sim::NodeId, Rib> adj_in_;
  Rib loc_rib_;
  std::map<sim::NodeId, Rib> adj_out_;
  std::map<util::IpPrefix, std::uint32_t> best_flips_;
  std::uint32_t max_best_flips_ = 0;

  Stats stats_;
  bool auto_restart_ = true;
  sim::Time restart_delay_ = sim::kSecond;

  /// Delta-snapshot bookkeeping. `state_version_` bumps on every mutation
  /// of checkpointed state (over-bumping is safe; under-bumping would make
  /// a stale delta — every mutation site must bump). `last_checkpoint_`
  /// remembers the snapshot the router last encoded into: a delta is legal
  /// iff the requested baseline IS that snapshot and the version is
  /// unchanged since.
  std::uint64_t state_version_ = 0;
  struct LastCheckpoint {
    snapshot::SnapshotId snapshot = 0;  ///< 0 = never encoded / invalidated
    std::uint64_t version = 0;
    std::uint64_t hash = 0;  ///< full-state hash at `version`
  };
  LastCheckpoint last_checkpoint_;
};

}  // namespace dice::bgp
