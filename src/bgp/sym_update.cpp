#include "bgp/sym_update.hpp"

#include "bgp/bugs.hpp"
#include "bgp/codec.hpp"

namespace dice::bgp {

using concolic::branch;
using concolic::input_byte;
using concolic::input_u16;
using concolic::input_u32;
using concolic::sym_assert;
using concolic::SymBool;
using concolic::SymCtx;
using concolic::SymU16;
using concolic::SymU32;
using concolic::SymU8;

namespace {

/// Decode failure inside the instrumented handler; carries the same error
/// codes as the concrete codec so the differential test can compare.
struct SymDecodeError {
  std::string code;
};

/// Cursor over the symbolic input. Position and buffer size are concrete
/// (the engine fixes the input length per execution); every *value* read
/// is symbolic. Length-field checks compare symbolic lengths against the
/// concrete remaining byte count, faithfully mirroring ByteReader.
///
/// The concrete decoder parses each section (withdrawn, attributes, one
/// attribute value, AS_PATH segment list) through a *bounded sub-reader*;
/// `limit()` reproduces those bounds so the two decoders fail with the
/// same error codes on the same inputs (bgp_sym_diff_test.cpp).
class SymCursor {
 public:
  explicit SymCursor(const SymCtx& ctx) : size_(ctx.input_size()), limit_(size_) {}

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return limit_ - pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ >= limit_; }
  [[nodiscard]] std::size_t limit() const noexcept { return limit_; }

  /// Narrows reads to [pos, end) — the sub-reader boundary. Returns the
  /// previous limit for restoration.
  std::size_t push_limit(std::size_t end) {
    const std::size_t previous = limit_;
    limit_ = end < size_ ? end : size_;
    return previous;
  }
  void pop_limit(std::size_t previous) { limit_ = previous; }

  [[nodiscard]] SymU8 u8(const char* what) {
    require(1, what);
    return input_byte(pos_++);
  }
  [[nodiscard]] SymU16 u16(const char* what) {
    require(2, what);
    const SymU16 v = input_u16(pos_);
    pos_ += 2;
    return v;
  }
  [[nodiscard]] SymU32 u32(const char* what) {
    require(4, what);
    const SymU32 v = input_u32(pos_);
    pos_ += 4;
    return v;
  }
  void skip(std::size_t n, const char* what) {
    require(n, what);
    pos_ += n;
  }
  /// Bounds a symbolic length field against the concrete remaining bytes;
  /// records the comparison (this is the `remaining() < n` branch of the
  /// concrete reader) and throws the matching decode error when violated.
  void check_fits(const SymU32& length, const char* code) {
    const SymU32 rem{static_cast<std::uint32_t>(remaining())};
    if (branch(length > rem)) throw SymDecodeError{code};
  }

 private:
  void require(std::size_t n, const char* what) {
    // Concrete bounds check — neither buffer size nor limits are symbolic.
    if (remaining() < n) throw SymDecodeError{what};
  }

  std::size_t size_;
  std::size_t pos_ = 0;
  std::size_t limit_;
};

/// RAII section bound.
class SectionLimit {
 public:
  SectionLimit(SymCursor& cur, std::size_t end) : cur_(cur), saved_(cur.push_limit(end)) {}
  ~SectionLimit() { cur_.pop_limit(saved_); }
  SectionLimit(const SectionLimit&) = delete;
  SectionLimit& operator=(const SectionLimit&) = delete;

 private:
  SymCursor& cur_;
  std::size_t saved_;
};

/// Parses one wire prefix (length octet + packed address bytes), recording
/// the length-validity branch. Returns the symbolic view plus the concrete
/// prefix for loc-rib lookups.
struct ParsedPrefix {
  SymU8 length;
  SymU32 bits;
  util::IpPrefix concrete;
};

ParsedPrefix sym_decode_prefix(SymCursor& cur) {
  const SymU8 len = cur.u8("bgp.update.invalid_network_field");
  if (branch(len > SymU8{32})) {
    throw SymDecodeError{"bgp.update.invalid_network_field"};
  }
  // nbytes = (len + 7) >> 3, evaluated concretely for cursor advancement;
  // the per-byte loop below records the i < nbytes conditions implicitly
  // through the len > 32 guard plus the reads themselves.
  const std::size_t nbytes = (static_cast<std::size_t>(len.concrete()) + 7) / 8;
  SymU32 bits{0};
  for (std::size_t i = 0; i < nbytes; ++i) {
    const SymU32 b = cur.u8("bgp.update.invalid_network_field").to<std::uint32_t>();
    bits = bits | (b << SymU32{static_cast<std::uint32_t>(24 - 8 * i)});
  }
  return ParsedPrefix{
      len, bits,
      util::IpPrefix{util::IpAddress{bits.concrete()}, len.concrete()}};
}

struct SymAttrSection {
  SymRouteView view;  ///< shared attribute state for all NLRI in the message
  bool saw_origin = false;
  bool saw_as_path = false;
  bool saw_next_hop = false;
};

/// Instrumented twin of codec.cpp's decode_attributes; the caller bounds
/// the cursor to the attribute section.
SymAttrSection sym_decode_attributes(SymCursor& cur, std::uint32_t bug_mask) {
  SymAttrSection out;
  bool seen[256] = {};
  while (!cur.exhausted()) {
    const SymU8 flags = cur.u8("bgp.update.malformed_attribute_list");
    const SymU8 type = cur.u8("bgp.update.malformed_attribute_list");

    // Extended-length bit decides the length field width (data-dependent
    // control flow on a symbolic flag bit).
    SymU32 length{0};
    if (branch((flags & SymU8{attr_flags::kExtendedLength}) != SymU8{0})) {
      length = cur.u16("bgp.update.malformed_attribute_list").to<std::uint32_t>();
    } else {
      length = cur.u8("bgp.update.malformed_attribute_list").to<std::uint32_t>();
    }
    cur.check_fits(length, "bgp.update.attribute_length");
    const std::size_t value_at = cur.pos();
    const std::size_t value_len = length.concrete();

    const std::uint8_t ctype = type.concrete();
    if (seen[ctype]) throw SymDecodeError{"bgp.update.malformed_attribute_list"};
    seen[ctype] = true;

    const SymBool optional = (flags & SymU8{attr_flags::kOptional}) != SymU8{0};
    const SymBool transitive = (flags & SymU8{attr_flags::kTransitive}) != SymU8{0};
    const SymBool partial = (flags & SymU8{attr_flags::kPartial}) != SymU8{0};

    const auto check_well_known = [&] {
      if (branch(optional || !transitive || partial)) {
        throw SymDecodeError{"bgp.update.attribute_flags"};
      }
    };
    const auto check_length = [&](std::uint32_t want) {
      if (branch(length != SymU32{want})) {
        throw SymDecodeError{"bgp.update.attribute_length"};
      }
    };

    // if/else-if chain over the symbolic type byte: each comparison is a
    // recorded branch, exactly like a compiled switch.
    if (branch(type == SymU8{static_cast<std::uint8_t>(AttrType::kOrigin)})) {
      check_well_known();
      check_length(1);
      const SymU8 value = cur.u8("bgp.update.attribute_length");
      if (branch(value > SymU8{2})) throw SymDecodeError{"bgp.update.invalid_origin"};
      out.view.origin = value;
      out.saw_origin = true;
    } else if (branch(type == SymU8{static_cast<std::uint8_t>(AttrType::kAsPath)})) {
      check_well_known();
      SectionLimit segment_section(cur, value_at + value_len);
      while (!cur.exhausted()) {
        const SymU8 seg_type = cur.u8("bgp.update.malformed_as_path");
        const SymU8 seg_count = cur.u8("bgp.update.malformed_as_path");
        if (branch(seg_type != SymU8{static_cast<std::uint8_t>(AsSegmentType::kSet)} &&
                   seg_type != SymU8{static_cast<std::uint8_t>(AsSegmentType::kSequence)})) {
          throw SymDecodeError{"bgp.update.malformed_as_path"};
        }
        if (branch(seg_count == SymU8{0})) {
          if ((bug_mask & bugs::kAsPathZeroSegment) != 0) {
            sym_assert(SymBool{false}, "bug.aspath_zero_segment: parser loop stuck");
          }
          throw SymDecodeError{"bgp.update.malformed_as_path"};
        }
        const bool is_sequence =
            seg_type.concrete() == static_cast<std::uint8_t>(AsSegmentType::kSequence);
        for (std::uint8_t i = 0; i < seg_count.concrete(); ++i) {
          const SymU32 asn = cur.u16("bgp.update.malformed_as_path").to<std::uint32_t>();
          out.view.path_asns.push_back(asn);
          if (is_sequence) ++out.view.path_selection_length;
        }
        if (!is_sequence) ++out.view.path_selection_length;  // SET counts once
      }
      out.saw_as_path = true;
    } else if (branch(type == SymU8{static_cast<std::uint8_t>(AttrType::kNextHop)})) {
      check_well_known();
      check_length(4);
      const SymU32 value = cur.u32("bgp.update.attribute_length");
      if (branch(value == SymU32{0} || value == SymU32{0xffffffffU})) {
        throw SymDecodeError{"bgp.update.invalid_next_hop"};
      }
      out.view.next_hop = value;
      out.saw_next_hop = true;
    } else if (branch(type == SymU8{static_cast<std::uint8_t>(AttrType::kMed)})) {
      if (branch(!optional || transitive)) {
        throw SymDecodeError{"bgp.update.attribute_flags"};
      }
      check_length(4);
      const SymU32 value = cur.u32("bgp.update.attribute_length");
      if ((bug_mask & bugs::kMedOverflow) != 0) {
        // Injected defect: (med + 1) wraps to zero and corrupts ranking.
        sym_assert(value != SymU32{0xffffffffU}, "bug.med_overflow: med+1 wrapped to 0");
      }
      out.view.med = value;
      out.view.has_med = true;
    } else if (branch(type == SymU8{static_cast<std::uint8_t>(AttrType::kLocalPref)})) {
      check_well_known();
      check_length(4);
      out.view.local_pref = cur.u32("bgp.update.attribute_length");
      out.view.has_local_pref = true;
    } else if (branch(type == SymU8{static_cast<std::uint8_t>(AttrType::kAtomicAggregate)})) {
      check_well_known();
      check_length(0);
    } else if (branch(type == SymU8{static_cast<std::uint8_t>(AttrType::kAggregator)})) {
      if (branch(!optional || !transitive)) {
        throw SymDecodeError{"bgp.update.attribute_flags"};
      }
      check_length(6);
      cur.skip(6, "bgp.update.attribute_length");
    } else if (branch(type == SymU8{static_cast<std::uint8_t>(AttrType::kCommunity)})) {
      if (branch(!optional || !transitive)) {
        throw SymDecodeError{"bgp.update.attribute_flags"};
      }
      // length % 4 != 0 <=> (length & 3) != 0 — symbolic modulo check.
      if (branch((length & SymU32{3}) != SymU32{0})) {
        if ((bug_mask & bugs::kCommunityLength) != 0) {
          sym_assert(SymBool{false}, "bug.community_length: out-of-bounds read");
        }
        throw SymDecodeError{"bgp.update.attribute_length"};
      }
      for (std::size_t i = 0; i + 4 <= value_len; i += 4) {
        out.view.communities.push_back(cur.u32("bgp.update.attribute_length"));
      }
    } else {
      // Unknown attribute: §6.3 rejects unrecognized *well-known* attrs.
      if (branch(!optional)) {
        throw SymDecodeError{"bgp.update.unrecognized_well_known"};
      }
      cur.skip(value_len, "bgp.update.attribute_length");
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Symbolic import-policy interpreter (the "configuration" dimension).
// ---------------------------------------------------------------------------

[[nodiscard]] SymBool sym_match(const Match& match, const SymRouteView& view) {
  switch (match.kind) {
    case Match::Kind::kAny:
      return SymBool{true};
    case Match::Kind::kPrefixExact: {
      // Wire prefixes carry zero bits past the length, but crafted inputs
      // may not; mask with the config prefix's own mask (a constant).
      const std::uint8_t len = match.prefix.length();
      const std::uint32_t mask =
          len == 0 ? 0 : (len >= 32 ? 0xffffffffU : ~((1U << (32 - len)) - 1U));
      return view.prefix_len == SymU8{len} &&
             (view.prefix_bits & SymU32{mask}) == SymU32{match.prefix.address().value()};
    }
    case Match::Kind::kPrefixOrLonger: {
      const std::uint8_t len = match.prefix.length();
      const std::uint32_t mask =
          len == 0 ? 0 : (len >= 32 ? 0xffffffffU : ~((1U << (32 - len)) - 1U));
      return view.prefix_len >= SymU8{len} &&
             (view.prefix_bits & SymU32{mask}) == SymU32{match.prefix.address().value()};
    }
    case Match::Kind::kAsPathContains: {
      SymBool any{false};
      for (const SymU32& asn : view.path_asns) {
        any = any || (asn == SymU32{match.asn & 0xffffU});
      }
      return any;
    }
    case Match::Kind::kOriginatedBy: {
      if (view.path_asns.empty()) return SymBool{false};
      return view.path_asns.back() == SymU32{match.asn & 0xffffU};
    }
    case Match::Kind::kCommunity: {
      SymBool any{false};
      for (const SymU32& c : view.communities) {
        any = any || (c == SymU32{match.community});
      }
      return any;
    }
    case Match::Kind::kNextHop:
      return view.next_hop == SymU32{match.address.value()};
  }
  return SymBool{false};
}

/// Evaluates the import policy over the symbolic view. Mirrors
/// policy.cpp's evaluate(); every match comparison lands in the path
/// condition (the interpreted configuration, paper §3).
[[nodiscard]] bool sym_evaluate_policy(const Policy& policy, SymRouteView& view) {
  for (const PolicyRule& rule : policy.rules) {
    SymBool matched{true};
    for (const Match& m : rule.matches) matched = matched && sym_match(m, view);
    if (!branch(matched)) continue;
    for (const Action& action : rule.actions) {
      switch (action.kind) {
        case Action::Kind::kSetLocalPref:
          view.local_pref = SymU32{action.value};
          view.has_local_pref = true;
          break;
        case Action::Kind::kSetMed:
          view.med = SymU32{action.value};
          view.has_med = true;
          break;
        case Action::Kind::kClearMed:
          view.med = SymU32{0};
          view.has_med = false;
          break;
        case Action::Kind::kAddCommunity:
          view.communities.push_back(SymU32{action.value});
          break;
        case Action::Kind::kRemoveCommunity:
          // Symbolic removal would need value-indexed erase; communities
          // only feed equality matches, so appending a tombstone is not
          // needed — concrete evaluation governs actual route state.
          break;
        case Action::Kind::kPrepend:
          for (std::uint32_t i = 0; i < action.value; ++i) {
            view.path_asns.insert(view.path_asns.begin(), SymU32{0});
            ++view.path_selection_length;
          }
          break;
      }
    }
    switch (rule.verdict) {
      case Verdict::kAccept: return true;
      case Verdict::kReject: return false;
      case Verdict::kNext: break;
    }
  }
  return policy.default_accept;
}

}  // namespace

SymHandlerResult sym_handle_update(SymCtx& ctx, const SymHandlerEnv& env) {
  SymHandlerResult result;
  const RouterConfig& config = *env.config;
  const Policy& import_policy =
      env.neighbor_index < config.neighbors.size()
          ? config.neighbors[env.neighbor_index].import_policy
          : Policy::accept_all();

  SymCursor cur(ctx);
  try {
    // Withdrawn routes section (bounded sub-reader, like the concrete twin).
    const SymU32 withdrawn_len = cur.u16("bgp.update.malformed_attribute_list")
                                     .to<std::uint32_t>();
    cur.check_fits(withdrawn_len, "bgp.update.malformed_attribute_list");
    {
      SectionLimit withdrawn_section(cur, cur.pos() + withdrawn_len.concrete());
      while (!cur.exhausted()) {
        (void)sym_decode_prefix(cur);
        ++result.withdrawn;
      }
    }

    // Path attributes section.
    const SymU32 attr_len = cur.u16("bgp.update.malformed_attribute_list")
                                .to<std::uint32_t>();
    cur.check_fits(attr_len, "bgp.update.malformed_attribute_list");
    SymAttrSection section;
    {
      SectionLimit attr_section(cur, cur.pos() + attr_len.concrete());
      section = sym_decode_attributes(cur, config.bug_mask);
    }

    // NLRI to end of body.
    std::vector<ParsedPrefix> nlri;
    while (!cur.exhausted()) {
      nlri.push_back(sym_decode_prefix(cur));
      ++result.announced;
    }

    if (!nlri.empty()) {
      if (!section.saw_origin || !section.saw_as_path || !section.saw_next_hop) {
        throw SymDecodeError{"bgp.update.missing_well_known"};
      }
      // AS-path loop check (own ASN) — symbolic over every path element.
      SymBool loop{false};
      for (const SymU32& asn : section.view.path_asns) {
        loop = loop || (asn == SymU32{config.asn & 0xffffU});
      }
      if (branch(loop)) {
        result.decode_ok = true;
        result.rejected = result.announced;
        return result;
      }

      for (ParsedPrefix& prefix : nlri) {
        SymRouteView view = section.view;
        view.prefix_bits = prefix.bits;
        view.prefix_len = prefix.length;
        if (!sym_evaluate_policy(import_policy, view)) {
          ++result.rejected;
          continue;
        }
        ++result.accepted;

        // The paper's route-selection condition: is this route now the
        // locally most preferred one for its prefix?
        auto best_it = env.current_best.find(prefix.concrete);
        const CurrentBest best = best_it == env.current_best.end()
                                     ? CurrentBest{0, 0xffffffffU}  // no incumbent
                                     : best_it->second;
        const SymU32 best_lp{best.local_pref};
        const SymU32 new_len{view.path_selection_length};
        const SymU32 best_len{best.path_length};
        const SymBool preferred =
            (view.local_pref > best_lp) ||
            ((view.local_pref == best_lp) && (new_len < best_len));
        if (branch(preferred)) ++result.preferred;
      }
    }
    result.decode_ok = true;
  } catch (const SymDecodeError& error) {
    result.decode_ok = false;
    result.error_code = error.code;
  }
  return result;
}

util::Bytes wrap_update_body(const util::Bytes& body) {
  util::ByteWriter w(kHeaderLength + body.size());
  for (std::size_t i = 0; i < kMarkerLength; ++i) w.u8(0xff);
  w.u16(static_cast<std::uint16_t>(kHeaderLength + body.size()));
  w.u8(static_cast<std::uint8_t>(MessageType::kUpdate));
  w.raw(body);
  return std::move(w).take();
}

std::optional<util::Bytes> unwrap_update_body(const util::Bytes& message) {
  if (message.size() < kHeaderLength) return std::nullopt;
  if (message[kHeaderLength - 1] != static_cast<std::uint8_t>(MessageType::kUpdate)) {
    return std::nullopt;
  }
  return util::Bytes(message.begin() + kHeaderLength, message.end());
}

}  // namespace dice::bgp
