// Parsed path attributes of a BGP route (RFC 4271 §5, RFC 1997).
// Unknown optional-transitive attributes are preserved byte-for-byte so the
// router forwards them per the transitivity rules (§5 last paragraph).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/types.hpp"
#include "util/ip.hpp"

namespace dice::bgp {

struct Aggregator {
  Asn asn = 0;
  util::IpAddress address;
  bool operator==(const Aggregator&) const = default;
};

/// An attribute the local implementation does not recognize, carried
/// opaquely when transitive (with the Partial bit set on re-advertisement).
struct UnknownAttr {
  std::uint8_t flags = 0;
  std::uint8_t type = 0;
  std::vector<std::uint8_t> value;
  bool operator==(const UnknownAttr&) const = default;
};

struct PathAttributes {
  Origin origin = Origin::kIncomplete;
  AsPath as_path;
  util::IpAddress next_hop;
  std::optional<std::uint32_t> med;
  std::optional<std::uint32_t> local_pref;
  bool atomic_aggregate = false;
  std::optional<Aggregator> aggregator;
  std::vector<Community> communities;  // kept sorted for canonical equality
  std::vector<UnknownAttr> unknown;

  [[nodiscard]] bool has_community(Community c) const noexcept;
  void add_community(Community c);
  void remove_community(Community c);

  /// Effective LOCAL_PREF for route selection (RFC default when absent).
  [[nodiscard]] std::uint32_t effective_local_pref() const noexcept {
    return local_pref.value_or(kDefaultLocalPref);
  }
  /// Effective MED: missing MED compares as the lowest (best) value 0 by
  /// default; kept explicit so tests can exercise both conventions.
  [[nodiscard]] std::uint32_t effective_med() const noexcept { return med.value_or(0); }

  [[nodiscard]] std::string to_string() const;

  bool operator==(const PathAttributes&) const = default;

  static constexpr std::uint32_t kDefaultLocalPref = 100;
};

}  // namespace dice::bgp
