#include "bgp/codec.hpp"

#include <algorithm>

#include "concolic/context.hpp"
#include "util/strings.hpp"

namespace dice::bgp {

namespace {

using util::ByteReader;
using util::ByteWriter;
using util::Bytes;
using util::Error;
using util::make_error;
using util::Result;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

void write_attr_header(ByteWriter& w, std::uint8_t flags, AttrType type,
                       std::size_t length) {
  if (length > 0xff) flags |= attr_flags::kExtendedLength;
  w.u8(flags);
  w.u8(static_cast<std::uint8_t>(type));
  if ((flags & attr_flags::kExtendedLength) != 0) {
    w.u16(static_cast<std::uint16_t>(length));
  } else {
    w.u8(static_cast<std::uint8_t>(length));
  }
}

void encode_as_path(ByteWriter& w, const AsPath& path) {
  ByteWriter body;
  for (const AsSegment& seg : path.segments()) {
    body.u8(static_cast<std::uint8_t>(seg.type));
    body.u8(static_cast<std::uint8_t>(seg.asns.size()));
    for (Asn asn : seg.asns) body.u16(static_cast<std::uint16_t>(asn));
  }
  write_attr_header(w, attr_flags::kTransitive, AttrType::kAsPath, body.size());
  w.raw(body.span());
}

void encode_open(ByteWriter& w, const OpenMessage& m) {
  w.u8(m.version);
  w.u16(m.my_asn);
  w.u16(m.hold_time);
  w.u32(m.router_id);
  w.u8(static_cast<std::uint8_t>(m.opt_params.size()));
  w.raw(m.opt_params);
}

void encode_update(ByteWriter& w, const UpdateMessage& m) {
  ByteWriter withdrawn;
  for (const util::IpPrefix& p : m.withdrawn) encode_prefix(withdrawn, p);
  w.u16(static_cast<std::uint16_t>(withdrawn.size()));
  w.raw(withdrawn.span());

  ByteWriter attrs;
  if (m.announces()) encode_attributes(attrs, m.attrs);
  w.u16(static_cast<std::uint16_t>(attrs.size()));
  w.raw(attrs.span());

  for (const util::IpPrefix& p : m.nlri) encode_prefix(w, p);
}

void encode_notification(ByteWriter& w, const NotificationMessage& m) {
  w.u8(static_cast<std::uint8_t>(m.code));
  w.u8(m.subcode);
  w.raw(m.data);
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

Result<OpenMessage> decode_open(ByteReader& r) {
  OpenMessage m;
  auto version = r.u8();
  if (!version) return make_error("bgp.open.truncated");
  m.version = version.value();
  if (m.version != 4) return make_error("bgp.open.unsupported_version");
  auto asn = r.u16();
  if (!asn) return make_error("bgp.open.truncated");
  m.my_asn = asn.value();
  if (m.my_asn == 0) return make_error("bgp.open.bad_peer_as");
  auto hold = r.u16();
  if (!hold) return make_error("bgp.open.truncated");
  m.hold_time = hold.value();
  // §4.2: hold time MUST be zero or at least three seconds.
  if (m.hold_time == 1 || m.hold_time == 2) return make_error("bgp.open.unacceptable_hold_time");
  auto id = r.u32();
  if (!id) return make_error("bgp.open.truncated");
  m.router_id = id.value();
  if (m.router_id == 0) return make_error("bgp.open.bad_bgp_identifier");
  auto opt_len = r.u8();
  if (!opt_len) return make_error("bgp.open.truncated");
  auto params = r.raw(opt_len.value());
  if (!params) return make_error("bgp.open.truncated");
  m.opt_params.assign(params.value().begin(), params.value().end());
  if (!r.exhausted()) return make_error("bgp.open.trailing_bytes");
  return m;
}

Result<AsPath> decode_as_path(std::span<const std::uint8_t> data, const DecodeOptions& options) {
  ByteReader r(data);
  AsPath path;
  while (!r.exhausted()) {
    auto type = r.u8();
    auto count = r.u8();
    if (!type || !count) return make_error("bgp.update.malformed_as_path", "segment header");
    if (type.value() != static_cast<std::uint8_t>(AsSegmentType::kSet) &&
        type.value() != static_cast<std::uint8_t>(AsSegmentType::kSequence)) {
      return make_error("bgp.update.malformed_as_path", "segment type");
    }
    if (count.value() == 0) {
      if ((options.bug_mask & bugs::kAsPathZeroSegment) != 0) {
        // Injected defect: the parsing loop would never advance past a
        // zero-count segment; the loop guard fires instead of the RFC error.
        throw concolic::CrashSignal{"bug.aspath_zero_segment: parser loop stuck", {}};
      }
      return make_error("bgp.update.malformed_as_path", "empty segment");
    }
    AsSegment seg;
    seg.type = static_cast<AsSegmentType>(type.value());
    seg.asns.reserve(count.value());
    for (std::uint8_t i = 0; i < count.value(); ++i) {
      auto asn = r.u16();
      if (!asn) return make_error("bgp.update.malformed_as_path", "truncated asns");
      seg.asns.push_back(asn.value());
    }
    path.segments().push_back(std::move(seg));
  }
  return path;
}

struct AttrSection {
  PathAttributes attrs;
  bool saw_origin = false;
  bool saw_as_path = false;
  bool saw_next_hop = false;
};

Result<AttrSection> decode_attributes(std::span<const std::uint8_t> data,
                                      const DecodeOptions& options) {
  AttrSection out;
  ByteReader r(data);
  bool seen[256] = {};
  while (!r.exhausted()) {
    auto flags_r = r.u8();
    auto type_r = r.u8();
    if (!flags_r || !type_r) return make_error("bgp.update.malformed_attribute_list", "header");
    const std::uint8_t flags = flags_r.value();
    const std::uint8_t type = type_r.value();

    std::size_t length = 0;
    if ((flags & attr_flags::kExtendedLength) != 0) {
      auto len = r.u16();
      if (!len) return make_error("bgp.update.malformed_attribute_list", "ext length");
      length = len.value();
    } else {
      auto len = r.u8();
      if (!len) return make_error("bgp.update.malformed_attribute_list", "length");
      length = len.value();
    }
    auto value_r = r.raw(length);
    if (!value_r) return make_error("bgp.update.attribute_length", "value truncated");
    const std::span<const std::uint8_t> value = value_r.value();

    if (seen[type]) {
      return make_error("bgp.update.malformed_attribute_list",
                        util::format("duplicate attribute %u", type));
    }
    seen[type] = true;

    const bool optional = (flags & attr_flags::kOptional) != 0;
    const bool transitive = (flags & attr_flags::kTransitive) != 0;
    const bool partial = (flags & attr_flags::kPartial) != 0;

    const auto check_well_known = [&]() -> util::Status {
      // §6.3: well-known attributes must have optional=0, transitive=1,
      // partial=0.
      if (optional || !transitive || partial) {
        return make_error("bgp.update.attribute_flags",
                          util::format("attr %u flags 0x%02x", type, flags));
      }
      return util::Status::success();
    };
    const auto check_length = [&](std::size_t want) -> util::Status {
      if (value.size() != want) {
        return make_error("bgp.update.attribute_length",
                          util::format("attr %u len %zu", type, value.size()));
      }
      return util::Status::success();
    };

    switch (static_cast<AttrType>(type)) {
      case AttrType::kOrigin: {
        if (auto s = check_well_known(); !s) return s.error();
        if (auto s = check_length(1); !s) return s.error();
        if (value[0] > 2) return make_error("bgp.update.invalid_origin");
        out.attrs.origin = static_cast<Origin>(value[0]);
        out.saw_origin = true;
        break;
      }
      case AttrType::kAsPath: {
        if (auto s = check_well_known(); !s) return s.error();
        auto path = decode_as_path(value, options);
        if (!path) return path.error();
        out.attrs.as_path = std::move(path).take();
        out.saw_as_path = true;
        break;
      }
      case AttrType::kNextHop: {
        if (auto s = check_well_known(); !s) return s.error();
        if (auto s = check_length(4); !s) return s.error();
        const std::uint32_t ip = (static_cast<std::uint32_t>(value[0]) << 24) |
                                 (static_cast<std::uint32_t>(value[1]) << 16) |
                                 (static_cast<std::uint32_t>(value[2]) << 8) | value[3];
        if (ip == 0 || ip == 0xffffffffU) return make_error("bgp.update.invalid_next_hop");
        out.attrs.next_hop = util::IpAddress{ip};
        out.saw_next_hop = true;
        break;
      }
      case AttrType::kMed: {
        if (!optional || transitive) {
          return make_error("bgp.update.attribute_flags", "MED must be optional non-transitive");
        }
        if (auto s = check_length(4); !s) return s.error();
        const std::uint32_t med = (static_cast<std::uint32_t>(value[0]) << 24) |
                                  (static_cast<std::uint32_t>(value[1]) << 16) |
                                  (static_cast<std::uint32_t>(value[2]) << 8) | value[3];
        if (med == 0xffffffffU && (options.bug_mask & bugs::kMedOverflow) != 0) {
          // Injected defect: a downstream preference computation does
          // `med + 1` and wraps, corrupting route ranking.
          throw concolic::CrashSignal{"bug.med_overflow: med+1 wrapped to 0", {}};
        }
        out.attrs.med = med;
        break;
      }
      case AttrType::kLocalPref: {
        if (auto s = check_well_known(); !s) return s.error();
        if (auto s = check_length(4); !s) return s.error();
        out.attrs.local_pref = (static_cast<std::uint32_t>(value[0]) << 24) |
                               (static_cast<std::uint32_t>(value[1]) << 16) |
                               (static_cast<std::uint32_t>(value[2]) << 8) | value[3];
        break;
      }
      case AttrType::kAtomicAggregate: {
        if (auto s = check_well_known(); !s) return s.error();
        if (auto s = check_length(0); !s) return s.error();
        out.attrs.atomic_aggregate = true;
        break;
      }
      case AttrType::kAggregator: {
        if (!optional || !transitive) {
          return make_error("bgp.update.attribute_flags", "AGGREGATOR must be optional transitive");
        }
        if (auto s = check_length(6); !s) return s.error();
        Aggregator agg;
        agg.asn = (static_cast<std::uint32_t>(value[0]) << 8) | value[1];
        agg.address = util::IpAddress{(static_cast<std::uint32_t>(value[2]) << 24) |
                                      (static_cast<std::uint32_t>(value[3]) << 16) |
                                      (static_cast<std::uint32_t>(value[4]) << 8) | value[5]};
        out.attrs.aggregator = agg;
        break;
      }
      case AttrType::kCommunity: {
        if (!optional || !transitive) {
          return make_error("bgp.update.attribute_flags", "COMMUNITY must be optional transitive");
        }
        if (value.size() % 4 != 0) {
          if ((options.bug_mask & bugs::kCommunityLength) != 0) {
            // Injected defect: the loop below would read past the end of
            // the value buffer on a truncated final community.
            throw concolic::CrashSignal{"bug.community_length: out-of-bounds read", {}};
          }
          return make_error("bgp.update.attribute_length", "COMMUNITY not multiple of 4");
        }
        for (std::size_t i = 0; i < value.size(); i += 4) {
          out.attrs.add_community((static_cast<std::uint32_t>(value[i]) << 24) |
                                  (static_cast<std::uint32_t>(value[i + 1]) << 16) |
                                  (static_cast<std::uint32_t>(value[i + 2]) << 8) |
                                  value[i + 3]);
        }
        break;
      }
      default: {
        if (!optional) {
          // §6.3: unrecognized well-known attribute.
          return make_error("bgp.update.unrecognized_well_known",
                            util::format("attr %u", type));
        }
        if (transitive) {
          UnknownAttr ua;
          ua.flags = flags | attr_flags::kPartial;  // §5: mark partial on pass-through
          ua.type = type;
          ua.value.assign(value.begin(), value.end());
          out.attrs.unknown.push_back(std::move(ua));
        }
        // Unrecognized optional non-transitive attributes are quietly ignored.
        break;
      }
    }
  }
  return out;
}

Result<UpdateMessage> decode_update(ByteReader& r, const DecodeOptions& options) {
  UpdateMessage m;
  auto withdrawn_len = r.u16();
  if (!withdrawn_len) return make_error("bgp.update.malformed_attribute_list", "withdrawn len");
  auto withdrawn_bytes = r.raw(withdrawn_len.value());
  if (!withdrawn_bytes) {
    return make_error("bgp.update.malformed_attribute_list", "withdrawn section");
  }
  {
    ByteReader wr(withdrawn_bytes.value());
    while (!wr.exhausted()) {
      auto prefix = decode_prefix(wr);
      if (!prefix) return prefix.error();
      m.withdrawn.push_back(prefix.value());
    }
  }

  auto attr_len = r.u16();
  if (!attr_len) return make_error("bgp.update.malformed_attribute_list", "attr len");
  auto attr_bytes = r.raw(attr_len.value());
  if (!attr_bytes) return make_error("bgp.update.malformed_attribute_list", "attr section");

  auto section = decode_attributes(attr_bytes.value(), options);
  if (!section) return section.error();

  while (!r.exhausted()) {
    auto prefix = decode_prefix(r);
    if (!prefix) return prefix.error();
    m.nlri.push_back(prefix.value());
  }

  if (!m.nlri.empty()) {
    // §6.3: mandatory attributes required when NLRI present.
    if (!section.value().saw_origin || !section.value().saw_as_path ||
        !section.value().saw_next_hop) {
      return make_error("bgp.update.missing_well_known", "ORIGIN/AS_PATH/NEXT_HOP");
    }
    m.attrs = std::move(section.value().attrs);
  }
  // Attributes without NLRI carry no meaning (§3.1) — the attribute section
  // was still validated above, but the canonical decoded form drops it so
  // decode(encode(decode(x))) is stable.
  return m;
}

Result<NotificationMessage> decode_notification(ByteReader& r) {
  NotificationMessage m;
  auto code = r.u8();
  auto subcode = r.u8();
  if (!code || !subcode) return make_error("bgp.notification.truncated");
  if (code.value() < 1 || code.value() > 6) return make_error("bgp.notification.bad_code");
  m.code = static_cast<NotifCode>(code.value());
  m.subcode = subcode.value();
  auto rest = r.raw(r.remaining());
  m.data.assign(rest.value().begin(), rest.value().end());
  return m;
}

}  // namespace

void append_as4_capability(std::vector<std::uint8_t>& opt_params, Asn asn) {
  opt_params.push_back(kCapabilitiesOptParam);
  opt_params.push_back(6);  // one capability TLV: code + length + 4-byte ASN
  opt_params.push_back(kAs4Capability);
  opt_params.push_back(4);
  opt_params.push_back(static_cast<std::uint8_t>(asn >> 24));
  opt_params.push_back(static_cast<std::uint8_t>(asn >> 16));
  opt_params.push_back(static_cast<std::uint8_t>(asn >> 8));
  opt_params.push_back(static_cast<std::uint8_t>(asn));
}

std::optional<Asn> find_as4_capability(std::span<const std::uint8_t> opt_params) {
  ByteReader r(opt_params);
  while (!r.exhausted()) {
    auto type = r.u8();
    auto len = r.u8();
    if (!type || !len) return std::nullopt;
    auto body = r.raw(len.value());
    if (!body) return std::nullopt;
    if (type.value() != kCapabilitiesOptParam) continue;
    ByteReader caps(body.value());
    while (!caps.exhausted()) {
      auto code = caps.u8();
      auto cap_len = caps.u8();
      if (!code || !cap_len) return std::nullopt;
      auto value = caps.raw(cap_len.value());
      if (!value) return std::nullopt;
      if (code.value() == kAs4Capability && cap_len.value() == 4) {
        const std::span<const std::uint8_t> v = value.value();
        return (static_cast<Asn>(v[0]) << 24) | (static_cast<Asn>(v[1]) << 16) |
               (static_cast<Asn>(v[2]) << 8) | static_cast<Asn>(v[3]);
      }
    }
  }
  return std::nullopt;
}

void encode_prefix(ByteWriter& writer, const util::IpPrefix& prefix) {
  writer.u8(prefix.length());
  const std::uint32_t bits = prefix.address().value();
  const std::size_t bytes = (prefix.length() + 7) / 8;
  for (std::size_t i = 0; i < bytes; ++i) {
    writer.u8(static_cast<std::uint8_t>(bits >> (24 - 8 * i)));
  }
}

Result<util::IpPrefix> decode_prefix(ByteReader& reader) {
  auto len = reader.u8();
  if (!len) return make_error("bgp.update.invalid_network_field", "missing length");
  if (len.value() > 32) {
    return make_error("bgp.update.invalid_network_field",
                      util::format("prefix length %u", len.value()));
  }
  const std::size_t bytes = (len.value() + 7) / 8;
  auto body = reader.raw(bytes);
  if (!body) return make_error("bgp.update.invalid_network_field", "truncated prefix");
  std::uint32_t bits = 0;
  for (std::size_t i = 0; i < bytes; ++i) {
    bits |= static_cast<std::uint32_t>(body.value()[i]) << (24 - 8 * i);
  }
  return util::IpPrefix{util::IpAddress{bits}, len.value()};
}

void encode_attributes(ByteWriter& writer, const PathAttributes& attrs) {
  {  // ORIGIN
    write_attr_header(writer, attr_flags::kTransitive, AttrType::kOrigin, 1);
    writer.u8(static_cast<std::uint8_t>(attrs.origin));
  }
  encode_as_path(writer, attrs.as_path);
  {  // NEXT_HOP
    write_attr_header(writer, attr_flags::kTransitive, AttrType::kNextHop, 4);
    writer.u32(attrs.next_hop.value());
  }
  if (attrs.med) {
    write_attr_header(writer, attr_flags::kOptional, AttrType::kMed, 4);
    writer.u32(*attrs.med);
  }
  if (attrs.local_pref) {
    write_attr_header(writer, attr_flags::kTransitive, AttrType::kLocalPref, 4);
    writer.u32(*attrs.local_pref);
  }
  if (attrs.atomic_aggregate) {
    write_attr_header(writer, attr_flags::kTransitive, AttrType::kAtomicAggregate, 0);
  }
  if (attrs.aggregator) {
    write_attr_header(writer, attr_flags::kOptional | attr_flags::kTransitive,
                      AttrType::kAggregator, 6);
    writer.u16(static_cast<std::uint16_t>(attrs.aggregator->asn));
    writer.u32(attrs.aggregator->address.value());
  }
  if (!attrs.communities.empty()) {
    write_attr_header(writer, attr_flags::kOptional | attr_flags::kTransitive,
                      AttrType::kCommunity, attrs.communities.size() * 4);
    for (Community c : attrs.communities) writer.u32(c);
  }
  for (const UnknownAttr& ua : attrs.unknown) {
    write_attr_header(writer, ua.flags, static_cast<AttrType>(ua.type), ua.value.size());
    writer.raw(ua.value);
  }
}

Result<Bytes> encode(const Message& msg) {
  ByteWriter w(64);
  for (std::size_t i = 0; i < kMarkerLength; ++i) w.u8(0xff);
  const std::size_t length_at = w.placeholder(2);
  w.u8(static_cast<std::uint8_t>(type_of(msg)));

  struct Visitor {
    ByteWriter& w;
    void operator()(const OpenMessage& m) const { encode_open(w, m); }
    void operator()(const UpdateMessage& m) const { encode_update(w, m); }
    void operator()(const NotificationMessage& m) const { encode_notification(w, m); }
    void operator()(const KeepaliveMessage&) const {}
  };
  std::visit(Visitor{w}, msg);

  if (w.size() > kMaxMessageLength) {
    return make_error("bgp.encode.too_long", util::format("%zu bytes", w.size()));
  }
  w.patch_u16(length_at, static_cast<std::uint16_t>(w.size()));
  return std::move(w).take();
}

Result<Message> decode(std::span<const std::uint8_t> data, const DecodeOptions& options) {
  ByteReader r(data);
  for (std::size_t i = 0; i < kMarkerLength; ++i) {
    auto b = r.u8();
    if (!b || b.value() != 0xff) {
      return make_error("bgp.header.connection_not_synchronized");
    }
  }
  auto length = r.u16();
  auto type = r.u8();
  if (!length || !type) return make_error("bgp.header.bad_message_length", "truncated header");
  if (length.value() < kHeaderLength || length.value() > kMaxMessageLength ||
      length.value() != data.size()) {
    return make_error("bgp.header.bad_message_length",
                      util::format("declared %u actual %zu", length.value(), data.size()));
  }

  switch (static_cast<MessageType>(type.value())) {
    case MessageType::kOpen: {
      auto m = decode_open(r);
      if (!m) return m.error();
      return Message{std::move(m).take()};
    }
    case MessageType::kUpdate: {
      auto m = decode_update(r, options);
      if (!m) return m.error();
      return Message{std::move(m).take()};
    }
    case MessageType::kNotification: {
      auto m = decode_notification(r);
      if (!m) return m.error();
      return Message{std::move(m).take()};
    }
    case MessageType::kKeepalive: {
      if (length.value() != kHeaderLength) {
        return make_error("bgp.header.bad_message_length", "keepalive with body");
      }
      return Message{KeepaliveMessage{}};
    }
    default:
      return make_error("bgp.header.bad_message_type",
                        util::format("type %u", type.value()));
  }
}

NotificationMessage error_to_notification(const Error& error) {
  NotificationMessage n;
  const std::string_view code = error.code;
  const auto set = [&n](NotifCode c, std::uint8_t sub) {
    n.code = c;
    n.subcode = sub;
  };
  if (code == "bgp.header.connection_not_synchronized") {
    set(NotifCode::kMessageHeaderError, 1);
  } else if (code == "bgp.header.bad_message_length") {
    set(NotifCode::kMessageHeaderError, 2);
  } else if (code == "bgp.header.bad_message_type") {
    set(NotifCode::kMessageHeaderError, 3);
  } else if (code == "bgp.open.unsupported_version") {
    set(NotifCode::kOpenMessageError, 1);
  } else if (code == "bgp.open.bad_peer_as") {
    set(NotifCode::kOpenMessageError, 2);
  } else if (code == "bgp.open.bad_bgp_identifier") {
    set(NotifCode::kOpenMessageError, 3);
  } else if (code == "bgp.open.unacceptable_hold_time") {
    set(NotifCode::kOpenMessageError, 6);
  } else if (util::starts_with(code, "bgp.open.")) {
    set(NotifCode::kOpenMessageError, 0);
  } else if (code == "bgp.update.attribute_flags") {
    set(NotifCode::kUpdateMessageError, static_cast<std::uint8_t>(UpdateError::kAttributeFlagsError));
  } else if (code == "bgp.update.attribute_length") {
    set(NotifCode::kUpdateMessageError, static_cast<std::uint8_t>(UpdateError::kAttributeLengthError));
  } else if (code == "bgp.update.invalid_origin") {
    set(NotifCode::kUpdateMessageError, static_cast<std::uint8_t>(UpdateError::kInvalidOrigin));
  } else if (code == "bgp.update.invalid_next_hop") {
    set(NotifCode::kUpdateMessageError, static_cast<std::uint8_t>(UpdateError::kInvalidNextHop));
  } else if (code == "bgp.update.invalid_network_field") {
    set(NotifCode::kUpdateMessageError, static_cast<std::uint8_t>(UpdateError::kInvalidNetworkField));
  } else if (code == "bgp.update.malformed_as_path") {
    set(NotifCode::kUpdateMessageError, static_cast<std::uint8_t>(UpdateError::kMalformedAsPath));
  } else if (code == "bgp.update.missing_well_known") {
    set(NotifCode::kUpdateMessageError, static_cast<std::uint8_t>(UpdateError::kMissingWellKnownAttribute));
  } else if (code == "bgp.update.unrecognized_well_known") {
    set(NotifCode::kUpdateMessageError,
        static_cast<std::uint8_t>(UpdateError::kUnrecognizedWellKnownAttribute));
  } else if (util::starts_with(code, "bgp.update.")) {
    set(NotifCode::kUpdateMessageError,
        static_cast<std::uint8_t>(UpdateError::kMalformedAttributeList));
  } else {
    set(NotifCode::kCease, 0);
  }
  n.data.assign(error.detail.begin(), error.detail.end());
  return n;
}

}  // namespace dice::bgp
