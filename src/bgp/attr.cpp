#include "bgp/attr.hpp"

#include <algorithm>

namespace dice::bgp {

bool PathAttributes::has_community(Community c) const noexcept {
  return std::binary_search(communities.begin(), communities.end(), c);
}

void PathAttributes::add_community(Community c) {
  auto it = std::lower_bound(communities.begin(), communities.end(), c);
  if (it == communities.end() || *it != c) communities.insert(it, c);
}

void PathAttributes::remove_community(Community c) {
  auto it = std::lower_bound(communities.begin(), communities.end(), c);
  if (it != communities.end() && *it == c) communities.erase(it);
}

std::string PathAttributes::to_string() const {
  std::string out = "origin=";
  out.append(bgp::to_string(origin));
  out.append(" as_path=[").append(as_path.to_string()).append("]");
  out.append(" next_hop=").append(next_hop.to_string());
  if (med) out.append(" med=").append(std::to_string(*med));
  if (local_pref) out.append(" local_pref=").append(std::to_string(*local_pref));
  if (atomic_aggregate) out.append(" atomic_aggregate");
  if (aggregator) {
    out.append(" aggregator=")
        .append(std::to_string(aggregator->asn))
        .append("@")
        .append(aggregator->address.to_string());
  }
  if (!communities.empty()) {
    out.append(" communities=");
    for (std::size_t i = 0; i < communities.size(); ++i) {
      if (i != 0) out.push_back(',');
      out.append(community_to_string(communities[i]));
    }
  }
  return out;
}

}  // namespace dice::bgp
