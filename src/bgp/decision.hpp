// The BGP decision process (RFC 4271 §9.1.2.2): a strict preference order
// over candidate routes for the same prefix. Exposed as a comparator plus
// the rule that decided, so tests can assert on tie-break levels and DiCE
// can report *why* a fault-inducing route won.
#pragma once

#include <string_view>
#include <vector>

#include "bgp/rib.hpp"

namespace dice::bgp {

/// Which §9.1.2.2 step decided the comparison.
enum class DecisionRule : std::uint8_t {
  kEqual = 0,
  kLocalRoute,       // locally originated beats learned
  kLocalPref,        // a) highest LOCAL_PREF
  kAsPathLength,     // b) shortest AS_PATH
  kOrigin,           // c) lowest Origin (IGP < EGP < INCOMPLETE)
  kMed,              // d) lowest MED among same-neighbor-AS routes
  kEbgpOverIbgp,     // e) eBGP-learned beats iBGP-learned
  kRouterId,         // f) lowest peer router id
  kPeerAddress,      // g) lowest peer address
};

[[nodiscard]] std::string_view to_string(DecisionRule rule) noexcept;

struct DecisionOptions {
  /// Compare MED even when the first ASNs differ (vendor "always-compare-
  /// med" knob; the RFC default compares only within the same neighbor AS).
  bool always_compare_med = false;
};

struct Comparison {
  int order = 0;  ///< <0: a preferred, >0: b preferred, 0: identical
  DecisionRule rule = DecisionRule::kEqual;
};

/// Compares candidates a and b for the same prefix.
[[nodiscard]] Comparison compare_routes(const Route& a, const Route& b,
                                        const DecisionOptions& options = {});

/// Returns the index of the best route, or SIZE_MAX for an empty set.
[[nodiscard]] std::size_t select_best(const std::vector<Route>& candidates,
                                      const DecisionOptions& options = {});

}  // namespace dice::bgp
