#include "bgp/checkpoint_codec.hpp"

#include <algorithm>

namespace dice::bgp::ckpt {

using util::ByteReader;
using util::ByteWriter;
using util::make_error;
using util::Result;

namespace {
// Presence/flag bits of the leading attrs byte: origin in the low 2 bits,
// optional-field presence above them.
constexpr std::uint8_t kOriginMask = 0x03;
constexpr std::uint8_t kHasMed = 0x04;
constexpr std::uint8_t kHasLocalPref = 0x08;
constexpr std::uint8_t kAtomicAggregate = 0x10;
constexpr std::uint8_t kHasAggregator = 0x20;
}  // namespace

void write_attrs_v2(ByteWriter& w, const PathAttributes& attrs) {
  std::uint8_t head = static_cast<std::uint8_t>(attrs.origin) & kOriginMask;
  if (attrs.med) head |= kHasMed;
  if (attrs.local_pref) head |= kHasLocalPref;
  if (attrs.atomic_aggregate) head |= kAtomicAggregate;
  if (attrs.aggregator) head |= kHasAggregator;
  w.u8(head);
  w.vu32(static_cast<std::uint32_t>(attrs.as_path.segments().size()));
  for (const AsSegment& seg : attrs.as_path.segments()) {
    w.u8(static_cast<std::uint8_t>(seg.type));
    w.vu32(static_cast<std::uint32_t>(seg.asns.size()));
    for (Asn asn : seg.asns) w.vu32(asn);
  }
  w.u32(attrs.next_hop.value());  // IPs stay fixed-width: varints gain nothing
  if (attrs.med) w.vu32(*attrs.med);
  if (attrs.local_pref) w.vu32(*attrs.local_pref);
  if (attrs.aggregator) {
    w.vu32(attrs.aggregator->asn);
    w.u32(attrs.aggregator->address.value());
  }
  w.vu32(static_cast<std::uint32_t>(attrs.communities.size()));
  for (Community c : attrs.communities) w.u32(c);
  w.vu32(static_cast<std::uint32_t>(attrs.unknown.size()));
  for (const UnknownAttr& ua : attrs.unknown) {
    w.u8(ua.flags);
    w.u8(ua.type);
    w.vu32(static_cast<std::uint32_t>(ua.value.size()));
    w.raw(ua.value);
  }
}

Result<PathAttributes> read_attrs_v2(ByteReader& r) {
  PathAttributes attrs;
  auto head = r.u8();
  if (!head) return head.error();
  if ((head.value() & kOriginMask) > 2) return make_error("rib.attrs.origin");
  attrs.origin = static_cast<Origin>(head.value() & kOriginMask);
  auto seg_count = r.vu32();
  if (!seg_count) return seg_count.error();
  for (std::uint32_t i = 0; i < seg_count.value(); ++i) {
    auto type = r.u8();
    auto count = r.vu32();
    if (!type || !count) return make_error("rib.attrs.as_path");
    AsSegment seg;
    seg.type = static_cast<AsSegmentType>(type.value());
    // Clamp: each ASN costs >= 1 stream byte, so a count beyond remaining()
    // is hostile — don't let it size an allocation before the reads fail.
    seg.asns.reserve(std::min<std::size_t>(count.value(), r.remaining()));
    for (std::uint32_t j = 0; j < count.value(); ++j) {
      auto asn = r.vu32();
      if (!asn) return asn.error();
      seg.asns.push_back(asn.value());
    }
    attrs.as_path.segments().push_back(std::move(seg));
  }
  auto next_hop = r.u32();
  if (!next_hop) return next_hop.error();
  attrs.next_hop = util::IpAddress{next_hop.value()};
  if ((head.value() & kHasMed) != 0) {
    auto med = r.vu32();
    if (!med) return med.error();
    attrs.med = med.value();
  }
  if ((head.value() & kHasLocalPref) != 0) {
    auto lp = r.vu32();
    if (!lp) return lp.error();
    attrs.local_pref = lp.value();
  }
  attrs.atomic_aggregate = (head.value() & kAtomicAggregate) != 0;
  if ((head.value() & kHasAggregator) != 0) {
    auto asn = r.vu32();
    auto addr = r.u32();
    if (!asn || !addr) return make_error("rib.attrs.aggregator");
    attrs.aggregator = Aggregator{asn.value(), util::IpAddress{addr.value()}};
  }
  auto comm_count = r.vu32();
  if (!comm_count) return comm_count.error();
  for (std::uint32_t i = 0; i < comm_count.value(); ++i) {
    auto c = r.u32();
    if (!c) return c.error();
    attrs.add_community(c.value());
  }
  auto unknown_count = r.vu32();
  if (!unknown_count) return unknown_count.error();
  for (std::uint32_t i = 0; i < unknown_count.value(); ++i) {
    UnknownAttr ua;
    auto flags = r.u8();
    auto type = r.u8();
    auto len = r.vu32();
    if (!flags || !type || !len) return make_error("rib.attrs.unknown");
    ua.flags = flags.value();
    ua.type = type.value();
    auto body = r.raw(len.value());
    if (!body) return body.error();
    ua.value.assign(body.value().begin(), body.value().end());
    attrs.unknown.push_back(std::move(ua));
  }
  return attrs;
}

std::uint32_t AttrPoolEncoder::index_of(const PathAttributes& attrs) {
  ByteWriter w;
  write_attrs_v2(w, attrs);
  std::string key(w.span().begin(), w.span().end());
  auto [it, inserted] = index_.try_emplace(std::move(key),
                                           static_cast<std::uint32_t>(entries_.size()));
  if (inserted) entries_.push_back(it->first);
  return it->second;
}

void AttrPoolEncoder::emit(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(Tag::kAttrPool));
  w.vu32(static_cast<std::uint32_t>(entries_.size()));
  for (const std::string& entry : entries_) {
    w.raw({reinterpret_cast<const std::uint8_t*>(entry.data()), entry.size()});
  }
}

Result<const PathAttributes*> AttrPoolDecoder::at(std::uint32_t index) const {
  if (index >= attrs_.size()) {
    return make_error("router.restore.attr_index", std::to_string(index));
  }
  return &attrs_[index];
}

Result<AttrPoolDecoder> AttrPoolDecoder::parse(ByteReader& r) {
  AttrPoolDecoder pool;
  auto count = r.vu32();
  if (!count) return count.error();
  // Each pool entry costs >= 8 stream bytes; a count beyond that bound is
  // hostile and must not size an allocation before the reads fail.
  pool.attrs_.reserve(std::min<std::size_t>(count.value(), r.remaining() / 8 + 1));
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto attrs = read_attrs_v2(r);
    if (!attrs) return attrs.error();
    pool.attrs_.push_back(std::move(attrs).take());
  }
  return pool;
}

void write_route_v2(ByteWriter& w, const Route& route, AttrPoolEncoder& pool) {
  w.u32(route.prefix.address().value());
  w.u8(route.prefix.length());
  w.vu32(pool.index_of(route.attrs));
  w.vu32(route.source.peer_node);
  w.vu32(route.source.peer_asn);
  w.vu32(route.source.peer_router_id);
  w.u32(route.source.peer_address.value());
  w.u8(route.source.ebgp ? 1 : 0);
}

Result<Route> read_route_v2(ByteReader& r, const AttrPoolDecoder& pool) {
  Route route;
  auto addr = r.u32();
  auto len = r.u8();
  if (!addr || !len) return make_error("rib.route.prefix");
  route.prefix = util::IpPrefix{util::IpAddress{addr.value()}, len.value()};
  auto attr_index = r.vu32();
  if (!attr_index) return attr_index.error();
  auto attrs = pool.at(attr_index.value());
  if (!attrs) return attrs.error();
  route.attrs = *attrs.value();
  auto peer_node = r.vu32();
  auto peer_asn = r.vu32();
  auto peer_id = r.vu32();
  auto peer_addr = r.u32();
  auto ebgp = r.u8();
  if (!peer_node || !peer_asn || !peer_id || !peer_addr || !ebgp) {
    return make_error("rib.route.source");
  }
  route.source.peer_node = peer_node.value();
  route.source.peer_asn = peer_asn.value();
  route.source.peer_router_id = peer_id.value();
  route.source.peer_address = util::IpAddress{peer_addr.value()};
  route.source.ebgp = ebgp.value() != 0;
  return route;
}

void write_rib_v2(ByteWriter& w, const Rib& rib, AttrPoolEncoder& pool) {
  w.vu32(static_cast<std::uint32_t>(rib.size()));
  for (const auto& [prefix, route] : rib.table()) write_route_v2(w, route, pool);
}

Result<Rib> read_rib_v2(ByteReader& r, const AttrPoolDecoder& pool) {
  Rib rib;
  auto count = r.vu32();
  if (!count) return count.error();
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto route = read_route_v2(r, pool);
    if (!route) return route.error();
    rib.upsert(std::move(route).take());
  }
  return rib;
}

void write_session_v2(ByteWriter& w, const Session& session) {
  w.u8(static_cast<std::uint8_t>(session.state()));
  w.vu32(session.peer_router_id());
  w.vu32(session.negotiated_hold());
}

void write_session_v2(ByteWriter& w, const SessionCheckpoint& checkpoint) {
  w.u8(static_cast<std::uint8_t>(checkpoint.state));
  w.vu32(checkpoint.peer_router_id);
  w.vu32(checkpoint.negotiated_hold);
}

Result<SessionCheckpoint> read_session_v2(ByteReader& r) {
  auto state = r.u8();
  auto peer_id = r.vu32();
  auto hold = r.vu32();
  if (!state || !peer_id || !hold) return make_error("session.restore.truncated");
  if (state.value() > static_cast<std::uint8_t>(SessionState::kEstablished)) {
    return make_error("session.restore.bad_state");
  }
  if (hold.value() > UINT16_MAX) return make_error("session.restore.bad_hold");
  SessionCheckpoint checkpoint;
  checkpoint.state = static_cast<SessionState>(state.value());
  checkpoint.peer_router_id = peer_id.value();
  checkpoint.negotiated_hold = static_cast<std::uint16_t>(hold.value());
  return checkpoint;
}

Result<RouterStateV2> read_router_v2(ByteReader& reader,
                                     const std::function<bool(sim::NodeId)>& known_peer) {
  (void)reader.u8();  // version byte, dispatched on by the caller
  RouterStateV2 out;
  AttrPoolDecoder pool;
  for (;;) {
    auto tag = reader.u8();
    if (!tag) return make_error("router.restore.truncated_tag");
    switch (static_cast<Tag>(tag.value())) {
      case Tag::kEnd:
        return out;
      case Tag::kAttrPool: {
        auto parsed = AttrPoolDecoder::parse(reader);
        if (!parsed) return parsed.error();
        pool = std::move(parsed).take();
        break;
      }
      case Tag::kSessions: {
        auto count = reader.vu32();
        if (!count) return make_error("router.restore.sessions");
        for (std::uint32_t i = 0; i < count.value(); ++i) {
          auto peer = reader.vu32();
          if (!peer) return make_error("router.restore.peer");
          if (!known_peer(peer.value())) {
            return make_error("router.restore.unknown_peer");
          }
          auto checkpoint = read_session_v2(reader);
          if (!checkpoint) return checkpoint.error();
          out.sessions.emplace_back(peer.value(), checkpoint.value());
        }
        break;
      }
      case Tag::kAdjIn: {
        auto count = reader.vu32();
        if (!count) return make_error("router.restore.adj_in");
        for (std::uint32_t i = 0; i < count.value(); ++i) {
          auto peer = reader.vu32();
          if (!peer) return make_error("router.restore.adj_in_peer");
          auto rib = read_rib_v2(reader, pool);
          if (!rib) {
            return make_error("router.restore.adj_in_rib", rib.error().to_string());
          }
          out.adj_in.emplace_back(peer.value(), std::move(rib).take());
        }
        break;
      }
      case Tag::kLocRib: {
        auto rib = read_rib_v2(reader, pool);
        if (!rib) {
          return make_error("router.restore.loc_rib", rib.error().to_string());
        }
        out.loc_rib = std::move(rib).take();
        break;
      }
      case Tag::kAdjOut: {
        auto count = reader.vu32();
        if (!count) return make_error("router.restore.adj_out");
        for (std::uint32_t i = 0; i < count.value(); ++i) {
          auto peer = reader.vu32();
          if (!peer) return make_error("router.restore.adj_out_peer");
          auto rib = read_rib_v2(reader, pool);
          if (!rib) {
            return make_error("router.restore.adj_out_rib", rib.error().to_string());
          }
          out.adj_out.emplace_back(peer.value(), std::move(rib).take());
        }
        break;
      }
      case Tag::kFlips: {
        auto count = reader.vu32();
        if (!count) return make_error("router.restore.flips");
        for (std::uint32_t i = 0; i < count.value(); ++i) {
          auto addr = reader.u32();
          auto len = reader.u8();
          auto flips = reader.vu32();
          if (!addr || !len || !flips) {
            return make_error("router.restore.flip_entry");
          }
          out.best_flips.emplace_back(
              util::IpPrefix{util::IpAddress{addr.value()}, len.value()}, flips.value());
        }
        break;
      }
      default:
        return make_error("router.restore.unknown_tag", std::to_string(tag.value()));
    }
  }
}

}  // namespace dice::bgp::ckpt
