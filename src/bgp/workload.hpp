// Synthetic route-feed workload generator (the stand-in for live Internet
// feeds, per DESIGN.md's substitution table). Produces streams of UPDATE
// events with realistic shape: Zipf-skewed prefix popularity, plausible
// AS-path lengths, configurable announce/withdraw mix and attribute
// richness. Used by the overhead benches (RIB scaling) and by soak tests
// that exercise routers under sustained churn.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/message.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace dice::bgp {

struct WorkloadOptions {
  std::size_t prefix_universe = 1000;   ///< distinct prefixes in the feed
  double zipf_exponent = 1.1;           ///< popularity skew across prefixes
  double withdraw_ratio = 0.15;         ///< fraction of events that withdraw
  std::size_t min_path_len = 1;
  std::size_t max_path_len = 6;
  std::size_t max_communities = 3;
  double med_probability = 0.4;
  Asn origin_asn_base = 64512;          ///< origin ASNs drawn from a pool
  std::size_t origin_asn_count = 64;
  std::uint8_t prefix_length = 24;      ///< /24s, the Internet's modal length
  std::uint32_t prefix_base = (20u << 24);  ///< 20.0.0.0 block
};

/// One feed event: an announcement (with attributes) or a withdrawal.
struct FeedEvent {
  bool announce = true;
  util::IpPrefix prefix;
  PathAttributes attrs;  ///< meaningful when announce

  /// Renders the event as a complete UPDATE message from `sender`.
  [[nodiscard]] UpdateMessage to_update() const;
};

class RouteFeedGenerator {
 public:
  RouteFeedGenerator(WorkloadOptions options, std::uint64_t seed);

  /// Next event in the stream. Withdrawals only target prefixes that are
  /// currently announced (the generator tracks feed state), so a consumer
  /// router's RIB mirrors the generator's announced set.
  [[nodiscard]] FeedEvent next(util::IpAddress next_hop);

  /// Convenience: a batch of `n` encoded UPDATE messages.
  [[nodiscard]] std::vector<util::Bytes> encoded_batch(std::size_t n,
                                                       util::IpAddress next_hop);

  /// Number of prefixes currently announced by the feed.
  [[nodiscard]] std::size_t announced_count() const noexcept { return announced_count_; }
  [[nodiscard]] const WorkloadOptions& options() const noexcept { return options_; }

 private:
  [[nodiscard]] util::IpPrefix prefix_for(std::size_t rank) const;

  WorkloadOptions options_;
  util::Rng rng_;
  util::ZipfSampler zipf_;
  std::vector<bool> announced_;  ///< by prefix rank
  std::size_t announced_count_ = 0;
};

}  // namespace dice::bgp
