#include "bgp/node_impl.hpp"

#include <utility>

#include "bgp/router.hpp"
#include "bgp2/engine.hpp"

namespace dice::bgp {

// Built-in engines are registered centrally (not via static self-
// registration in each engine's own object file, which a static-library
// link would silently drop as unreferenced).
NodeImplementationRegistry::NodeImplementationRegistry() {
  factories_.emplace(
      std::string(kBgpRouterImplementationId),
      [](sim::Network& network, sim::NodeId node, RouterConfig config,
         AddressBook address_book) -> std::unique_ptr<NodeImplementation> {
        return std::make_unique<BgpRouter>(network, node, std::move(config),
                                           std::move(address_book));
      });
  factories_.emplace(
      std::string(bgp2::kFsmEngineImplementationId),
      [](sim::Network& network, sim::NodeId node, RouterConfig config,
         AddressBook address_book) -> std::unique_ptr<NodeImplementation> {
        return std::make_unique<bgp2::FsmEngine>(network, node, std::move(config),
                                                 std::move(address_book));
      });
}

NodeImplementationRegistry& NodeImplementationRegistry::instance() {
  static NodeImplementationRegistry registry;
  return registry;
}

void NodeImplementationRegistry::register_factory(std::string id, Factory factory) {
  const std::lock_guard<std::mutex> lock(mutex_);
  factories_[std::move(id)] = std::move(factory);
}

bool NodeImplementationRegistry::contains(std::string_view id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return factories_.find(id) != factories_.end();
}

std::vector<std::string> NodeImplementationRegistry::ids() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [id, factory] : factories_) out.push_back(id);
  return out;
}

std::unique_ptr<NodeImplementation> NodeImplementationRegistry::create(
    std::string_view id, sim::Network& network, sim::NodeId node,
    RouterConfig config, AddressBook address_book) const {
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = factories_.find(id);
    if (it == factories_.end()) return nullptr;
    factory = it->second;
  }
  return factory(network, node, std::move(config), std::move(address_book));
}

}  // namespace dice::bgp
