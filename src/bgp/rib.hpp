// Routing Information Bases (RFC 4271 §3.2): Adj-RIB-In (per peer, post
// import policy), Loc-RIB (selected best routes), Adj-RIB-Out (per peer,
// post export policy). All three are serializable for checkpointing.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bgp/attr.hpp"
#include "util/bytes.hpp"
#include "util/ip.hpp"

namespace dice::bgp {

/// Identifies where a route came from for selection and propagation rules.
struct RouteSource {
  std::uint32_t peer_node = 0xffffffffU;  ///< sim node id; kLocalRoute for originated
  Asn peer_asn = 0;
  RouterId peer_router_id = 0;
  util::IpAddress peer_address;
  bool ebgp = true;

  bool operator==(const RouteSource&) const = default;
};

inline constexpr std::uint32_t kLocalRoute = 0xffffffffU;

struct Route {
  util::IpPrefix prefix;
  PathAttributes attrs;
  RouteSource source;

  [[nodiscard]] bool local() const noexcept { return source.peer_node == kLocalRoute; }
  [[nodiscard]] std::string to_string() const;

  bool operator==(const Route&) const = default;
};

/// One RIB table: prefix -> route, ordered for deterministic iteration.
class Rib {
 public:
  using Table = std::map<util::IpPrefix, Route>;

  /// Returns true when the entry changed (insert or different route).
  bool upsert(Route route);
  /// Returns true when an entry was removed.
  bool erase(const util::IpPrefix& prefix);

  [[nodiscard]] const Route* find(const util::IpPrefix& prefix) const;
  [[nodiscard]] const Table& table() const noexcept { return table_; }
  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }
  [[nodiscard]] bool empty() const noexcept { return table_.empty(); }
  void clear() noexcept { table_.clear(); }

  /// Content hash over all entries (order-independent by construction since
  /// iteration is ordered). Feeds checkpoint hashes and the privacy-
  /// preserving check interface.
  [[nodiscard]] std::uint64_t content_hash() const;

  void serialize(util::ByteWriter& writer) const;
  [[nodiscard]] static util::Result<Rib> deserialize(util::ByteReader& reader);

 private:
  Table table_;
};

/// Route (de)serialization shared by Rib and session checkpoints.
void serialize_route(util::ByteWriter& writer, const Route& route);
[[nodiscard]] util::Result<Route> deserialize_route(util::ByteReader& reader);
void serialize_attrs(util::ByteWriter& writer, const PathAttributes& attrs);
[[nodiscard]] util::Result<PathAttributes> deserialize_attrs(util::ByteReader& reader);

}  // namespace dice::bgp
