#include "bgp/rib.hpp"

#include "util/hash.hpp"
#include "util/result.hpp"

namespace dice::bgp {

using util::ByteReader;
using util::ByteWriter;
using util::make_error;
using util::Result;

std::string Route::to_string() const {
  std::string out = prefix.to_string();
  out.append(" via ").append(local() ? "local" : attrs.next_hop.to_string());
  out.append(" [").append(attrs.to_string()).append("]");
  return out;
}

bool Rib::upsert(Route route) {
  // try_emplace only constructs the mapped value when it inserts, so the
  // move below never fires on the replace path (where `route` is still
  // needed for the comparison). Pair members initialize first-then-second:
  // the key is copied out of `route` before the move runs.
  auto [it, inserted] = table_.try_emplace(route.prefix, std::move(route));
  if (inserted) return true;
  if (it->second == route) return false;
  it->second = std::move(route);
  return true;
}

bool Rib::erase(const util::IpPrefix& prefix) { return table_.erase(prefix) > 0; }

const Route* Rib::find(const util::IpPrefix& prefix) const {
  auto it = table_.find(prefix);
  return it == table_.end() ? nullptr : &it->second;
}

std::uint64_t Rib::content_hash() const {
  ByteWriter w;
  serialize(w);
  return util::fnv1a(w.span());
}

void serialize_attrs(ByteWriter& w, const PathAttributes& attrs) {
  w.u8(static_cast<std::uint8_t>(attrs.origin));
  w.u16(static_cast<std::uint16_t>(attrs.as_path.segments().size()));
  for (const AsSegment& seg : attrs.as_path.segments()) {
    w.u8(static_cast<std::uint8_t>(seg.type));
    w.u16(static_cast<std::uint16_t>(seg.asns.size()));
    for (Asn asn : seg.asns) w.u32(asn);
  }
  w.u32(attrs.next_hop.value());
  w.u8(attrs.med.has_value() ? 1 : 0);
  if (attrs.med) w.u32(*attrs.med);
  w.u8(attrs.local_pref.has_value() ? 1 : 0);
  if (attrs.local_pref) w.u32(*attrs.local_pref);
  w.u8(attrs.atomic_aggregate ? 1 : 0);
  w.u8(attrs.aggregator.has_value() ? 1 : 0);
  if (attrs.aggregator) {
    w.u32(attrs.aggregator->asn);
    w.u32(attrs.aggregator->address.value());
  }
  w.u16(static_cast<std::uint16_t>(attrs.communities.size()));
  for (Community c : attrs.communities) w.u32(c);
  w.u16(static_cast<std::uint16_t>(attrs.unknown.size()));
  for (const UnknownAttr& ua : attrs.unknown) {
    w.u8(ua.flags);
    w.u8(ua.type);
    w.u16(static_cast<std::uint16_t>(ua.value.size()));
    w.raw(ua.value);
  }
}

Result<PathAttributes> deserialize_attrs(ByteReader& r) {
  PathAttributes attrs;
  auto origin = r.u8();
  if (!origin || origin.value() > 2) return make_error("rib.attrs.origin");
  attrs.origin = static_cast<Origin>(origin.value());
  auto seg_count = r.u16();
  if (!seg_count) return seg_count.error();
  for (std::uint16_t i = 0; i < seg_count.value(); ++i) {
    auto type = r.u8();
    auto count = r.u16();
    if (!type || !count) return make_error("rib.attrs.as_path");
    AsSegment seg;
    seg.type = static_cast<AsSegmentType>(type.value());
    for (std::uint16_t j = 0; j < count.value(); ++j) {
      auto asn = r.u32();
      if (!asn) return asn.error();
      seg.asns.push_back(asn.value());
    }
    attrs.as_path.segments().push_back(std::move(seg));
  }
  auto next_hop = r.u32();
  if (!next_hop) return next_hop.error();
  attrs.next_hop = util::IpAddress{next_hop.value()};
  auto has_med = r.u8();
  if (!has_med) return has_med.error();
  if (has_med.value() != 0) {
    auto med = r.u32();
    if (!med) return med.error();
    attrs.med = med.value();
  }
  auto has_lp = r.u8();
  if (!has_lp) return has_lp.error();
  if (has_lp.value() != 0) {
    auto lp = r.u32();
    if (!lp) return lp.error();
    attrs.local_pref = lp.value();
  }
  auto atomic = r.u8();
  if (!atomic) return atomic.error();
  attrs.atomic_aggregate = atomic.value() != 0;
  auto has_agg = r.u8();
  if (!has_agg) return has_agg.error();
  if (has_agg.value() != 0) {
    auto asn = r.u32();
    auto addr = r.u32();
    if (!asn || !addr) return make_error("rib.attrs.aggregator");
    attrs.aggregator = Aggregator{asn.value(), util::IpAddress{addr.value()}};
  }
  auto comm_count = r.u16();
  if (!comm_count) return comm_count.error();
  for (std::uint16_t i = 0; i < comm_count.value(); ++i) {
    auto c = r.u32();
    if (!c) return c.error();
    attrs.add_community(c.value());
  }
  auto unknown_count = r.u16();
  if (!unknown_count) return unknown_count.error();
  for (std::uint16_t i = 0; i < unknown_count.value(); ++i) {
    UnknownAttr ua;
    auto flags = r.u8();
    auto type = r.u8();
    auto len = r.u16();
    if (!flags || !type || !len) return make_error("rib.attrs.unknown");
    ua.flags = flags.value();
    ua.type = type.value();
    auto body = r.raw(len.value());
    if (!body) return body.error();
    ua.value.assign(body.value().begin(), body.value().end());
    attrs.unknown.push_back(std::move(ua));
  }
  return attrs;
}

void serialize_route(ByteWriter& w, const Route& route) {
  w.u32(route.prefix.address().value());
  w.u8(route.prefix.length());
  serialize_attrs(w, route.attrs);
  w.u32(route.source.peer_node);
  w.u32(route.source.peer_asn);
  w.u32(route.source.peer_router_id);
  w.u32(route.source.peer_address.value());
  w.u8(route.source.ebgp ? 1 : 0);
}

Result<Route> deserialize_route(ByteReader& r) {
  Route route;
  auto addr = r.u32();
  auto len = r.u8();
  if (!addr || !len) return make_error("rib.route.prefix");
  route.prefix = util::IpPrefix{util::IpAddress{addr.value()}, len.value()};
  auto attrs = deserialize_attrs(r);
  if (!attrs) return attrs.error();
  route.attrs = std::move(attrs).take();
  auto peer_node = r.u32();
  auto peer_asn = r.u32();
  auto peer_id = r.u32();
  auto peer_addr = r.u32();
  auto ebgp = r.u8();
  if (!peer_node || !peer_asn || !peer_id || !peer_addr || !ebgp) {
    return make_error("rib.route.source");
  }
  route.source.peer_node = peer_node.value();
  route.source.peer_asn = peer_asn.value();
  route.source.peer_router_id = peer_id.value();
  route.source.peer_address = util::IpAddress{peer_addr.value()};
  route.source.ebgp = ebgp.value() != 0;
  return route;
}

void Rib::serialize(ByteWriter& w) const {
  w.u32(static_cast<std::uint32_t>(table_.size()));
  for (const auto& [prefix, route] : table_) serialize_route(w, route);
}

Result<Rib> Rib::deserialize(ByteReader& r) {
  Rib rib;
  auto count = r.u32();
  if (!count) return count.error();
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto route = deserialize_route(r);
    if (!route) return route.error();
    rib.table_.emplace(route.value().prefix, std::move(route).take());
  }
  return rib;
}

}  // namespace dice::bgp
