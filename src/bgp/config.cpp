#include "bgp/config.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace dice::bgp {

using util::make_error;
using util::Result;
using util::Status;

const NeighborConfig* RouterConfig::neighbor_by_address(util::IpAddress addr) const {
  for (const NeighborConfig& n : neighbors) {
    if (n.address == addr) return &n;
  }
  return nullptr;
}

const NeighborConfig* RouterConfig::neighbor_by_asn(Asn neighbor_asn) const {
  for (const NeighborConfig& n : neighbors) {
    if (n.asn == neighbor_asn) return &n;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

namespace {

enum class TokKind : std::uint8_t { kIdent, kNumber, kString, kPunct, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  std::size_t line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  [[nodiscard]] Result<std::vector<Token>> tokenize() {
    std::vector<Token> out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
        continue;
      }
      if (c == '#') {  // comment to end of line
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
        out.push_back(lex_ident());
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        out.push_back(lex_number());
        continue;
      }
      if (c == '"') {
        auto tok = lex_string();
        if (!tok) return tok.error();
        out.push_back(std::move(tok).take());
        continue;
      }
      if (std::string_view("{}();,~+").find(c) != std::string_view::npos) {
        out.push_back(Token{TokKind::kPunct, std::string(1, c), line_});
        ++pos_;
        continue;
      }
      return make_error("config.lex.bad_char",
                        util::format("'%c' at line %zu", c, line_));
    }
    out.push_back(Token{TokKind::kEnd, "", line_});
    return out;
  }

 private:
  [[nodiscard]] Token lex_ident() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '_')) {
      ++pos_;
    }
    return Token{TokKind::kIdent, std::string(text_.substr(start, pos_ - start)), line_};
  }

  /// Numbers, IPv4 addresses and prefixes all start with a digit; the lexer
  /// consumes the full dotted/slashed form and the parser reinterprets it.
  [[nodiscard]] Token lex_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '.' ||
            text_[pos_] == '/')) {
      ++pos_;
    }
    return Token{TokKind::kNumber, std::string(text_.substr(start, pos_ - start)), line_};
  }

  [[nodiscard]] Result<Token> lex_string() {
    ++pos_;  // opening quote
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return make_error("config.lex.unterminated_string", util::format("line %zu", line_));
    }
    Token tok{TokKind::kString, std::string(text_.substr(start, pos_ - start)), line_};
    ++pos_;  // closing quote
    return tok;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  [[nodiscard]] Result<RouterConfig> parse() {
    RouterConfig config;
    if (auto s = expect_ident("router"); !s) return s.error();
    if (auto s = expect_punct("{"); !s) return s.error();
    while (!peek_punct("}")) {
      auto s = parse_router_item(config);
      if (!s) return s.error();
    }
    if (auto s = expect_punct("}"); !s) return s.error();
    return config;
  }

 private:
  [[nodiscard]] const Token& peek() const { return tokens_[pos_]; }
  [[nodiscard]] const Token& advance() { return tokens_[pos_++]; }
  [[nodiscard]] bool peek_punct(std::string_view p) const {
    return peek().kind == TokKind::kPunct && peek().text == p;
  }
  [[nodiscard]] bool peek_ident(std::string_view name) const {
    return peek().kind == TokKind::kIdent && peek().text == name;
  }

  [[nodiscard]] Status expect_punct(std::string_view p) {
    if (!peek_punct(p)) {
      return make_error("config.parse.expected",
                        util::format("'%s' at line %zu, got '%s'", std::string(p).c_str(),
                                     peek().line, peek().text.c_str()));
    }
    ++pos_;
    return Status::success();
  }
  [[nodiscard]] Status expect_ident(std::string_view name) {
    if (!peek_ident(name)) {
      return make_error("config.parse.expected",
                        util::format("'%s' at line %zu, got '%s'", std::string(name).c_str(),
                                     peek().line, peek().text.c_str()));
    }
    ++pos_;
    return Status::success();
  }

  [[nodiscard]] Result<std::uint64_t> expect_number() {
    if (peek().kind != TokKind::kNumber) {
      return make_error("config.parse.expected_number",
                        util::format("line %zu, got '%s'", peek().line, peek().text.c_str()));
    }
    auto value = util::parse_u64(advance().text);
    if (!value) return value.error();
    return value.value();
  }

  [[nodiscard]] Result<util::IpAddress> expect_address() {
    if (peek().kind != TokKind::kNumber) {
      return make_error("config.parse.expected_address", util::format("line %zu", peek().line));
    }
    return util::IpAddress::parse(advance().text);
  }

  [[nodiscard]] Result<util::IpPrefix> expect_prefix() {
    if (peek().kind != TokKind::kNumber) {
      return make_error("config.parse.expected_prefix", util::format("line %zu", peek().line));
    }
    return util::IpPrefix::parse(advance().text);
  }

  [[nodiscard]] Result<Community> expect_community() {
    if (auto s = expect_punct("("); !s) return s.error();
    auto asn = expect_number();
    if (!asn) return asn.error();
    if (auto s = expect_punct(","); !s) return s.error();
    auto tag = expect_number();
    if (!tag) return tag.error();
    if (auto s = expect_punct(")"); !s) return s.error();
    if (asn.value() > 0xffff || tag.value() > 0xffff) {
      return make_error("config.parse.community_range");
    }
    return make_community(static_cast<std::uint16_t>(asn.value()),
                          static_cast<std::uint16_t>(tag.value()));
  }

  [[nodiscard]] Status parse_router_item(RouterConfig& config) {
    if (peek().kind != TokKind::kIdent) {
      return make_error("config.parse.expected_item", util::format("line %zu", peek().line));
    }
    const std::string key = advance().text;
    if (key == "name") {
      if (peek().kind != TokKind::kIdent && peek().kind != TokKind::kString) {
        return make_error("config.parse.expected_name");
      }
      config.name = advance().text;
      return expect_punct(";");
    }
    if (key == "id") {
      auto addr = expect_address();
      if (!addr) return addr.error();
      config.router_id = addr.value().value();
      return expect_punct(";");
    }
    if (key == "as") {
      auto asn = expect_number();
      if (!asn) return asn.error();
      config.asn = static_cast<Asn>(asn.value());
      return expect_punct(";");
    }
    if (key == "address") {
      auto addr = expect_address();
      if (!addr) return addr.error();
      config.address = addr.value();
      return expect_punct(";");
    }
    if (key == "hold") {
      auto hold = expect_number();
      if (!hold) return hold.error();
      config.hold_time = static_cast<std::uint16_t>(hold.value());
      return expect_punct(";");
    }
    if (key == "med_always_compare") {
      config.always_compare_med = true;
      return expect_punct(";");
    }
    if (key == "bug_mask") {
      auto mask = expect_number();
      if (!mask) return mask.error();
      config.bug_mask = static_cast<std::uint32_t>(mask.value());
      return expect_punct(";");
    }
    if (key == "network") {
      auto prefix = expect_prefix();
      if (!prefix) return prefix.error();
      config.networks.push_back(prefix.value());
      return expect_punct(";");
    }
    if (key == "neighbor") {
      return parse_neighbor(config);
    }
    return make_error("config.parse.unknown_item",
                      util::format("'%s' at line %zu", key.c_str(), peek().line));
  }

  [[nodiscard]] Status parse_neighbor(RouterConfig& config) {
    NeighborConfig n;
    auto addr = expect_address();
    if (!addr) return addr.error();
    n.address = addr.value();
    if (auto s = expect_punct("{"); !s) return s.error();
    while (!peek_punct("}")) {
      if (peek().kind != TokKind::kIdent) {
        return make_error("config.parse.expected_item", util::format("line %zu", peek().line));
      }
      const std::string key = advance().text;
      if (key == "as") {
        auto asn = expect_number();
        if (!asn) return asn.error();
        n.asn = static_cast<Asn>(asn.value());
        if (auto s = expect_punct(";"); !s) return s;
      } else if (key == "description") {
        if (peek().kind != TokKind::kString) {
          return make_error("config.parse.expected_string", util::format("line %zu", peek().line));
        }
        n.description = advance().text;
        if (auto s = expect_punct(";"); !s) return s;
      } else if (key == "import") {
        auto policy = parse_policy();
        if (!policy) return policy.error();
        n.import_policy = std::move(policy).take();
      } else if (key == "export") {
        auto policy = parse_policy();
        if (!policy) return policy.error();
        n.export_policy = std::move(policy).take();
      } else {
        return make_error("config.parse.unknown_neighbor_item", key);
      }
    }
    if (auto s = expect_punct("}"); !s) return s.error();
    config.neighbors.push_back(std::move(n));
    return Status::success();
  }

  [[nodiscard]] Result<Policy> parse_policy() {
    Policy policy;
    policy.default_accept = false;
    if (auto s = expect_punct("{"); !s) return s.error();
    while (!peek_punct("}")) {
      if (peek_ident("default")) {
        ++pos_;
        if (peek_ident("accept")) {
          policy.default_accept = true;
        } else if (peek_ident("reject")) {
          policy.default_accept = false;
        } else {
          return make_error("config.parse.expected_default_verdict",
                            util::format("line %zu", peek().line));
        }
        ++pos_;
        if (auto s = expect_punct(";"); !s) return s.error();
        continue;
      }
      auto rule = parse_rule();
      if (!rule) return rule.error();
      policy.rules.push_back(std::move(rule).take());
    }
    if (auto s = expect_punct("}"); !s) return s.error();
    return policy;
  }

  /// rule := "if" cond {"and" cond} "then" body | "then" body
  [[nodiscard]] Result<PolicyRule> parse_rule() {
    PolicyRule rule;
    if (peek_ident("if")) {
      ++pos_;
      while (true) {
        auto match = parse_match();
        if (!match) return match.error();
        rule.matches.push_back(std::move(match).take());
        if (peek_ident("and")) {
          ++pos_;
          continue;
        }
        break;
      }
    }
    if (auto s = expect_ident("then"); !s) return s.error();
    if (auto s = parse_action_body(rule); !s) return s.error();
    return rule;
  }

  [[nodiscard]] Result<Match> parse_match() {
    Match match;
    if (peek_ident("any")) {
      ++pos_;
      match.kind = Match::Kind::kAny;
      return match;
    }
    if (peek_ident("prefix")) {
      ++pos_;
      if (auto s = expect_ident("in"); !s) return s.error();
      auto prefix = expect_prefix();
      if (!prefix) return prefix.error();
      match.prefix = prefix.value();
      if (peek_punct("+")) {
        ++pos_;
        match.kind = Match::Kind::kPrefixOrLonger;
      } else {
        match.kind = Match::Kind::kPrefixExact;
      }
      return match;
    }
    if (peek_ident("aspath")) {
      ++pos_;
      if (auto s = expect_punct("~"); !s) return s.error();
      auto asn = expect_number();
      if (!asn) return asn.error();
      match.kind = Match::Kind::kAsPathContains;
      match.asn = static_cast<Asn>(asn.value());
      return match;
    }
    if (peek_ident("originated")) {
      ++pos_;
      auto asn = expect_number();
      if (!asn) return asn.error();
      match.kind = Match::Kind::kOriginatedBy;
      match.asn = static_cast<Asn>(asn.value());
      return match;
    }
    if (peek_ident("community")) {
      ++pos_;
      auto community = expect_community();
      if (!community) return community.error();
      match.kind = Match::Kind::kCommunity;
      match.community = community.value();
      return match;
    }
    if (peek_ident("nexthop")) {
      ++pos_;
      auto addr = expect_address();
      if (!addr) return addr.error();
      match.kind = Match::Kind::kNextHop;
      match.address = addr.value();
      return match;
    }
    return make_error("config.parse.unknown_match",
                      util::format("'%s' at line %zu", peek().text.c_str(), peek().line));
  }

  [[nodiscard]] Status parse_action_body(PolicyRule& rule) {
    if (peek_punct("{")) {
      ++pos_;
      while (!peek_punct("}")) {
        if (auto s = parse_action(rule); !s) return s;
      }
      return expect_punct("}");
    }
    return parse_action(rule);
  }

  [[nodiscard]] Status parse_action(PolicyRule& rule) {
    if (peek().kind != TokKind::kIdent) {
      return make_error("config.parse.expected_action", util::format("line %zu", peek().line));
    }
    const std::string key = advance().text;
    if (key == "accept") {
      rule.verdict = Verdict::kAccept;
      return expect_punct(";");
    }
    if (key == "reject") {
      rule.verdict = Verdict::kReject;
      return expect_punct(";");
    }
    if (key == "localpref") {
      auto value = expect_number();
      if (!value) return value.error();
      rule.actions.push_back(Action{Action::Kind::kSetLocalPref,
                                    static_cast<std::uint32_t>(value.value())});
      return expect_punct(";");
    }
    if (key == "med") {
      if (peek_ident("clear")) {
        ++pos_;
        rule.actions.push_back(Action{Action::Kind::kClearMed, 0});
        return expect_punct(";");
      }
      auto value = expect_number();
      if (!value) return value.error();
      rule.actions.push_back(
          Action{Action::Kind::kSetMed, static_cast<std::uint32_t>(value.value())});
      return expect_punct(";");
    }
    if (key == "prepend") {
      auto value = expect_number();
      if (!value) return value.error();
      rule.actions.push_back(
          Action{Action::Kind::kPrepend, static_cast<std::uint32_t>(value.value())});
      return expect_punct(";");
    }
    if (key == "community") {
      bool add = true;
      if (peek_ident("add")) {
        ++pos_;
      } else if (peek_ident("remove")) {
        ++pos_;
        add = false;
      } else {
        return make_error("config.parse.expected_add_remove",
                          util::format("line %zu", peek().line));
      }
      auto community = expect_community();
      if (!community) return community.error();
      rule.actions.push_back(Action{
          add ? Action::Kind::kAddCommunity : Action::Kind::kRemoveCommunity,
          community.value()});
      return expect_punct(";");
    }
    return make_error("config.parse.unknown_action", key);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Renderer
// ---------------------------------------------------------------------------

void render_match(std::string& out, const Match& match) {
  switch (match.kind) {
    case Match::Kind::kAny: out.append("any"); break;
    case Match::Kind::kPrefixExact:
      out.append("prefix in ").append(match.prefix.to_string());
      break;
    case Match::Kind::kPrefixOrLonger:
      out.append("prefix in ").append(match.prefix.to_string()).append("+");
      break;
    case Match::Kind::kAsPathContains:
      out.append(util::format("aspath ~ %u", match.asn));
      break;
    case Match::Kind::kOriginatedBy:
      out.append(util::format("originated %u", match.asn));
      break;
    case Match::Kind::kCommunity:
      out.append("community ").append(community_to_string(match.community));
      break;
    case Match::Kind::kNextHop:
      out.append("nexthop ").append(match.address.to_string());
      break;
  }
}

void render_action(std::string& out, const Action& action) {
  switch (action.kind) {
    case Action::Kind::kSetLocalPref:
      out.append(util::format("localpref %u;", action.value));
      break;
    case Action::Kind::kSetMed:
      out.append(util::format("med %u;", action.value));
      break;
    case Action::Kind::kClearMed:
      out.append("med clear;");
      break;
    case Action::Kind::kAddCommunity:
      out.append("community add ").append(community_to_string(action.value)).append(";");
      break;
    case Action::Kind::kRemoveCommunity:
      out.append("community remove ").append(community_to_string(action.value)).append(";");
      break;
    case Action::Kind::kPrepend:
      out.append(util::format("prepend %u;", action.value));
      break;
  }
}

void render_policy(std::string& out, const Policy& policy, const char* keyword,
                   const std::string& indent) {
  out.append(indent).append(keyword).append(" {\n");
  out.append(indent).append("  default ").append(
      policy.default_accept ? "accept;\n" : "reject;\n");
  for (const PolicyRule& rule : policy.rules) {
    out.append(indent).append("  ");
    if (!rule.matches.empty()) {
      out.append("if ");
      for (std::size_t i = 0; i < rule.matches.size(); ++i) {
        if (i != 0) out.append(" and ");
        render_match(out, rule.matches[i]);
      }
      out.push_back(' ');
    }
    out.append("then { ");
    for (const Action& action : rule.actions) {
      render_action(out, action);
      out.push_back(' ');
    }
    switch (rule.verdict) {
      case Verdict::kAccept: out.append("accept; "); break;
      case Verdict::kReject: out.append("reject; "); break;
      case Verdict::kNext: break;
    }
    out.append("}\n");
  }
  out.append(indent).append("}\n");
}

}  // namespace

Result<RouterConfig> parse_config(std::string_view text) {
  Lexer lexer(text);
  auto tokens = lexer.tokenize();
  if (!tokens) return tokens.error();
  Parser parser(std::move(tokens).take());
  return parser.parse();
}

std::string render_config(const RouterConfig& config) {
  std::string out = "router {\n";
  if (!config.name.empty()) out.append("  name ").append(config.name).append(";\n");
  out.append("  id ").append(router_id_to_string(config.router_id)).append(";\n");
  out.append(util::format("  as %u;\n", config.asn));
  out.append("  address ").append(config.address.to_string()).append(";\n");
  out.append(util::format("  hold %u;\n", config.hold_time));
  if (config.always_compare_med) out.append("  med_always_compare;\n");
  if (config.bug_mask != 0) out.append(util::format("  bug_mask %u;\n", config.bug_mask));
  for (const util::IpPrefix& p : config.networks) {
    out.append("  network ").append(p.to_string()).append(";\n");
  }
  for (const NeighborConfig& n : config.neighbors) {
    out.append("  neighbor ").append(n.address.to_string()).append(" {\n");
    out.append(util::format("    as %u;\n", n.asn));
    if (!n.description.empty()) {
      out.append("    description \"").append(n.description).append("\";\n");
    }
    render_policy(out, n.import_policy, "import", "    ");
    render_policy(out, n.export_policy, "export", "    ");
    out.append("  }\n");
  }
  out.append("}\n");
  return out;
}

Status validate_config(const RouterConfig& config) {
  if (config.asn == 0) return make_error("config.validate.zero_asn");
  if (config.router_id == 0) return make_error("config.validate.zero_router_id");
  for (std::size_t i = 0; i < config.neighbors.size(); ++i) {
    const NeighborConfig& n = config.neighbors[i];
    if (n.asn == 0) {
      return make_error("config.validate.neighbor_zero_asn", n.address.to_string());
    }
    for (std::size_t j = i + 1; j < config.neighbors.size(); ++j) {
      if (config.neighbors[j].address == n.address) {
        return make_error("config.validate.duplicate_neighbor", n.address.to_string());
      }
    }
  }
  for (const util::IpPrefix& p : config.networks) {
    const util::IpPrefix normalized{p.address(), p.length()};
    if (normalized != p) {
      return make_error("config.validate.host_bits", p.to_string());
    }
  }
  return Status::success();
}

}  // namespace dice::bgp
