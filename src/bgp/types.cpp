#include "bgp/types.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace dice::bgp {

std::string_view to_string(Origin origin) noexcept {
  switch (origin) {
    case Origin::kIgp: return "IGP";
    case Origin::kEgp: return "EGP";
    case Origin::kIncomplete: return "INCOMPLETE";
  }
  return "?";
}

std::size_t AsPath::selection_length() const noexcept {
  std::size_t length = 0;
  for (const AsSegment& seg : segments_) {
    length += seg.type == AsSegmentType::kSequence ? seg.asns.size() : 1;
  }
  return length;
}

std::size_t AsPath::asn_count() const noexcept {
  std::size_t count = 0;
  for (const AsSegment& seg : segments_) count += seg.asns.size();
  return count;
}

bool AsPath::contains(Asn asn) const noexcept {
  for (const AsSegment& seg : segments_) {
    if (std::find(seg.asns.begin(), seg.asns.end(), asn) != seg.asns.end()) return true;
  }
  return false;
}

std::optional<Asn> AsPath::origin_asn() const noexcept {
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    if (it->type == AsSegmentType::kSequence && !it->asns.empty()) return it->asns.back();
  }
  return std::nullopt;
}

std::optional<Asn> AsPath::first_asn() const noexcept {
  for (const AsSegment& seg : segments_) {
    if (seg.type == AsSegmentType::kSequence && !seg.asns.empty()) return seg.asns.front();
  }
  return std::nullopt;
}

void AsPath::prepend(Asn asn, std::size_t count) {
  if (count == 0) return;
  if (segments_.empty() || segments_.front().type != AsSegmentType::kSequence) {
    segments_.insert(segments_.begin(), AsSegment{AsSegmentType::kSequence, {}});
  }
  auto& front = segments_.front().asns;
  front.insert(front.begin(), count, asn);
}

std::string AsPath::to_string() const {
  std::string out;
  for (const AsSegment& seg : segments_) {
    if (!out.empty()) out.push_back(' ');
    if (seg.type == AsSegmentType::kSet) out.push_back('{');
    for (std::size_t i = 0; i < seg.asns.size(); ++i) {
      if (i != 0) out.push_back(seg.type == AsSegmentType::kSet ? ',' : ' ');
      out.append(std::to_string(seg.asns[i]));
    }
    if (seg.type == AsSegmentType::kSet) out.push_back('}');
  }
  return out.empty() ? "<empty>" : out;
}

std::string community_to_string(Community c) {
  return util::format("(%u,%u)", c >> 16, c & 0xffff);
}

std::string router_id_to_string(RouterId id) {
  return util::IpAddress{id}.to_string();
}

}  // namespace dice::bgp
