// Core BGP vocabulary: AS numbers, origins, AS paths, communities.
// Follows RFC 4271 (BGP-4) with 2-byte AS numbers on the wire (the paper's
// 2011-era BIRD setup) while storing ASNs as 32-bit internally.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/ip.hpp"

namespace dice::bgp {

using Asn = std::uint32_t;
using RouterId = std::uint32_t;  // conventionally rendered as an IPv4 address

enum class Origin : std::uint8_t { kIgp = 0, kEgp = 1, kIncomplete = 2 };

[[nodiscard]] std::string_view to_string(Origin origin) noexcept;

enum class MessageType : std::uint8_t {
  kOpen = 1,
  kUpdate = 2,
  kNotification = 3,
  kKeepalive = 4,
};

/// Path attribute type codes (RFC 4271 §4.3, RFC 1997 for COMMUNITY).
enum class AttrType : std::uint8_t {
  kOrigin = 1,
  kAsPath = 2,
  kNextHop = 3,
  kMed = 4,
  kLocalPref = 5,
  kAtomicAggregate = 6,
  kAggregator = 7,
  kCommunity = 8,
};

/// Attribute flag bits (high nibble of the flags octet).
namespace attr_flags {
inline constexpr std::uint8_t kOptional = 0x80;
inline constexpr std::uint8_t kTransitive = 0x40;
inline constexpr std::uint8_t kPartial = 0x20;
inline constexpr std::uint8_t kExtendedLength = 0x10;
}  // namespace attr_flags

/// AS_PATH segment kinds (RFC 4271 §4.3 b).
enum class AsSegmentType : std::uint8_t { kSet = 1, kSequence = 2 };

struct AsSegment {
  AsSegmentType type = AsSegmentType::kSequence;
  std::vector<Asn> asns;

  bool operator==(const AsSegment&) const = default;
};

/// An AS_PATH: ordered segments. Most paths are a single SEQUENCE.
class AsPath {
 public:
  AsPath() = default;
  explicit AsPath(std::vector<Asn> sequence) {
    if (!sequence.empty()) {
      segments_.push_back(AsSegment{AsSegmentType::kSequence, std::move(sequence)});
    }
  }

  [[nodiscard]] const std::vector<AsSegment>& segments() const noexcept { return segments_; }
  [[nodiscard]] std::vector<AsSegment>& segments() noexcept { return segments_; }

  /// Path length for route selection: each SEQUENCE ASN counts 1, each SET
  /// counts 1 total (RFC 4271 §9.1.2.2 a).
  [[nodiscard]] std::size_t selection_length() const noexcept;

  /// Total number of ASNs mentioned (for stats / tests).
  [[nodiscard]] std::size_t asn_count() const noexcept;

  [[nodiscard]] bool contains(Asn asn) const noexcept;

  /// ASN of the route's originator: the last ASN of the last SEQUENCE
  /// segment; nullopt for empty paths (locally originated routes).
  [[nodiscard]] std::optional<Asn> origin_asn() const noexcept;

  /// First ASN (the neighboring AS the route was learned from).
  [[nodiscard]] std::optional<Asn> first_asn() const noexcept;

  /// Prepends `asn` `count` times at the front (export-time prepending).
  void prepend(Asn asn, std::size_t count = 1);

  [[nodiscard]] bool empty() const noexcept { return segments_.empty(); }
  [[nodiscard]] std::string to_string() const;

  bool operator==(const AsPath&) const = default;

 private:
  std::vector<AsSegment> segments_;
};

/// RFC 1997 community value; (asn << 16) | tag.
using Community = std::uint32_t;

[[nodiscard]] constexpr Community make_community(std::uint16_t asn, std::uint16_t tag) noexcept {
  return (static_cast<Community>(asn) << 16) | tag;
}

namespace well_known {
inline constexpr Community kNoExport = 0xffffff01;
inline constexpr Community kNoAdvertise = 0xffffff02;
inline constexpr Community kNoExportSubconfed = 0xffffff03;
}  // namespace well_known

[[nodiscard]] std::string community_to_string(Community c);

/// Renders a RouterId in the conventional dotted-quad form.
[[nodiscard]] std::string router_id_to_string(RouterId id);

}  // namespace dice::bgp
