// Per-neighbor BGP session FSM. The simulated transport is reliable and
// ordered (TCP semantics), so the Connect/Active dance collapses into an
// immediate OPEN exchange: Idle -> OpenSent -> OpenConfirm -> Established.
// Hold and keepalive timers follow RFC 4271 §8 (keepalive = hold/3); any
// protocol error sends the prescribed NOTIFICATION and resets to Idle.
#pragma once

#include <cstdint>
#include <string>

#include "bgp/config.hpp"
#include "bgp/message.hpp"
#include "sim/network.hpp"
#include "util/result.hpp"

namespace dice::bgp {

enum class SessionState : std::uint8_t { kIdle = 0, kOpenSent, kOpenConfirm, kEstablished };

[[nodiscard]] std::string_view to_string(SessionState state) noexcept;

/// Typed form of a Session checkpoint: FSM state + negotiated values.
/// Immutable once parsed; applying it to a Session is allocation-free.
struct SessionCheckpoint {
  SessionState state = SessionState::kIdle;
  RouterId peer_router_id = 0;
  std::uint16_t negotiated_hold = 0;
};

/// Callbacks a Session needs from its owning router.
class SessionHost {
 public:
  virtual ~SessionHost() = default;
  virtual void session_send(sim::NodeId peer, const Message& msg, bool background) = 0;
  virtual void session_established(sim::NodeId peer) = 0;
  /// Called on any transition out of Established or failed setup.
  virtual void session_down(sim::NodeId peer, const std::string& reason) = 0;
  virtual void session_update(sim::NodeId peer, const UpdateMessage& update) = 0;
  /// Called whenever the session's checkpointed state (FSM state, peer
  /// router id, negotiated hold) changes — the host's churn signal for
  /// delta snapshots. Keepalive traffic and stats do NOT fire it: a
  /// quiescent established session stays clean across keepalive rounds.
  /// Default no-op so non-router hosts (tests) need not care.
  virtual void session_state_dirty() {}
  [[nodiscard]] virtual sim::Simulator& session_simulator() = 0;
};

class Session {
 public:
  Session(SessionHost& host, sim::NodeId peer_node, const NeighborConfig& neighbor,
          const RouterConfig& local);

  /// Sends OPEN and moves to OpenSent.
  void start();

  /// Administrative or error stop: optionally notify the peer, drop to Idle.
  void stop(NotifCode code, std::uint8_t subcode, const std::string& reason);

  /// Dispatches a decoded message through the FSM.
  void handle_message(const Message& msg);

  /// Resets as if the transport failed (no NOTIFICATION sent) — the "local
  /// session reset" scenario from the paper's introduction.
  void reset_transport(const std::string& reason);

  [[nodiscard]] SessionState state() const noexcept { return state_; }
  [[nodiscard]] bool established() const noexcept {
    return state_ == SessionState::kEstablished;
  }
  [[nodiscard]] sim::NodeId peer_node() const noexcept { return peer_node_; }
  [[nodiscard]] const NeighborConfig& neighbor() const noexcept { return neighbor_; }
  [[nodiscard]] RouterId peer_router_id() const noexcept { return peer_router_id_; }
  [[nodiscard]] std::uint16_t negotiated_hold() const noexcept { return negotiated_hold_; }
  [[nodiscard]] bool ebgp() const noexcept { return neighbor_.asn != local_.asn; }

  // Checkpoint support: FSM state + negotiated values. Timers are re-armed
  // on restore according to the restored state. restore() = parse + apply;
  // the split lets one decode feed many clones (snapshot/prepared.hpp).
  void checkpoint(util::ByteWriter& writer) const;
  [[nodiscard]] static util::Result<SessionCheckpoint> parse_checkpoint(
      util::ByteReader& reader);
  void apply_checkpoint(const SessionCheckpoint& checkpoint);
  [[nodiscard]] util::Status restore(util::ByteReader& reader);

  /// Returns the session to its just-constructed state (Idle, timers
  /// cancelled, stats zeroed) without notifying the host — clone-arena
  /// reuse, not a protocol event.
  void reset_for_reuse();

  struct Stats {
    std::uint64_t opens_sent = 0;
    std::uint64_t updates_received = 0;
    std::uint64_t keepalives_received = 0;
    std::uint64_t notifications_received = 0;
    std::uint64_t resets = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  void handle_open(const OpenMessage& open);
  void handle_keepalive();
  void handle_update(const UpdateMessage& update);
  void handle_notification(const NotificationMessage& notif);
  void go_established();
  void go_idle(const std::string& reason);
  void arm_hold_timer();
  void arm_keepalive_timer();
  void cancel_timers();

  SessionHost& host_;
  sim::NodeId peer_node_;
  NeighborConfig neighbor_;
  const RouterConfig& local_;

  SessionState state_ = SessionState::kIdle;
  RouterId peer_router_id_ = 0;
  std::uint16_t negotiated_hold_ = 0;
  sim::TimerHandle hold_timer_;
  sim::TimerHandle keepalive_timer_;
  Stats stats_;
};

}  // namespace dice::bgp
