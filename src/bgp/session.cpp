#include "bgp/session.hpp"

#include <algorithm>

#include "bgp/codec.hpp"
#include "util/log.hpp"

namespace dice::bgp {

namespace {
const util::Logger& logger() {
  static util::Logger instance("bgp.session");
  return instance;
}
}  // namespace

std::string_view to_string(SessionState state) noexcept {
  switch (state) {
    case SessionState::kIdle: return "Idle";
    case SessionState::kOpenSent: return "OpenSent";
    case SessionState::kOpenConfirm: return "OpenConfirm";
    case SessionState::kEstablished: return "Established";
  }
  return "?";
}

Session::Session(SessionHost& host, sim::NodeId peer_node, const NeighborConfig& neighbor,
                 const RouterConfig& local)
    : host_(host), peer_node_(peer_node), neighbor_(neighbor), local_(local) {}

void Session::start() {
  if (state_ != SessionState::kIdle) return;
  OpenMessage open;
  if (local_.asn > 0xffff) {
    // RFC 6793: the 2-octet OPEN field cannot carry our ASN — send
    // AS_TRANS, and announce the real ASN via the AS4 capability when
    // this speaker supports it.
    open.my_asn = static_cast<std::uint16_t>(kAsTrans);
    if (local_.as4_capable) append_as4_capability(open.opt_params, local_.asn);
  } else {
    open.my_asn = static_cast<std::uint16_t>(local_.asn);
  }
  open.hold_time = local_.hold_time;
  open.router_id = local_.router_id;
  host_.session_send(peer_node_, Message{open}, /*background=*/false);
  ++stats_.opens_sent;
  state_ = SessionState::kOpenSent;
  // §8.2.2: a large hold timer (4 minutes) guards OpenSent.
  negotiated_hold_ = local_.hold_time;
  host_.session_state_dirty();
  arm_hold_timer();
}

void Session::stop(NotifCode code, std::uint8_t subcode, const std::string& reason) {
  if (state_ == SessionState::kIdle) return;
  NotificationMessage notif;
  notif.code = code;
  notif.subcode = subcode;
  host_.session_send(peer_node_, Message{notif}, /*background=*/false);
  go_idle(reason);
}

void Session::reset_transport(const std::string& reason) {
  if (state_ == SessionState::kIdle) return;
  go_idle(reason);
}

void Session::handle_message(const Message& msg) {
  struct Visitor {
    Session& s;
    void operator()(const OpenMessage& m) const { s.handle_open(m); }
    void operator()(const UpdateMessage& m) const { s.handle_update(m); }
    void operator()(const NotificationMessage& m) const { s.handle_notification(m); }
    void operator()(const KeepaliveMessage&) const { s.handle_keepalive(); }
  };
  std::visit(Visitor{*this}, msg);
}

void Session::handle_open(const OpenMessage& open) {
  if (state_ == SessionState::kIdle) {
    // Passive open: the peer initiated first (e.g. staggered restarts after
    // a reset). Send our own OPEN and continue as OpenSent — this resolves
    // the connection-collision case on our single logical transport.
    start();
  }
  if (state_ != SessionState::kOpenSent) {
    // §6.5: OPEN outside OpenSent is an FSM error.
    stop(NotifCode::kFsmError, 0, "OPEN in state " + std::string(to_string(state_)));
    return;
  }
  // RFC 6793: an AS4-capable local speaker trusts the peer's AS4
  // capability over the 2-octet field; a legacy speaker (as4_capable
  // false) ignores capabilities and accepts AS_TRANS from any neighbor
  // configured with a 4-byte ASN — that is the "negotiate down" path.
  Asn announced = open.my_asn;
  if (local_.as4_capable) {
    if (std::optional<Asn> as4 = find_as4_capability(open.opt_params)) announced = *as4;
  }
  const bool as_matches = announced == neighbor_.asn ||
                          (announced == kAsTrans && neighbor_.asn > 0xffff);
  if (!as_matches) {
    stop(NotifCode::kOpenMessageError, 2,
         "peer AS mismatch: expected " + std::to_string(neighbor_.asn) + " got " +
             std::to_string(announced));
    return;
  }
  peer_router_id_ = open.router_id;
  negotiated_hold_ = std::min<std::uint16_t>(local_.hold_time, open.hold_time);
  host_.session_send(peer_node_, Message{KeepaliveMessage{}}, /*background=*/false);
  state_ = SessionState::kOpenConfirm;
  host_.session_state_dirty();
  arm_hold_timer();
}

void Session::handle_keepalive() {
  ++stats_.keepalives_received;
  switch (state_) {
    case SessionState::kOpenConfirm:
      go_established();
      break;
    case SessionState::kEstablished:
      arm_hold_timer();
      break;
    case SessionState::kOpenSent:
    case SessionState::kIdle:
      // Stray keepalive from a stale connection; harmless, ignore in Idle,
      // FSM error in OpenSent.
      if (state_ == SessionState::kOpenSent) {
        stop(NotifCode::kFsmError, 0, "KEEPALIVE in OpenSent");
      }
      break;
  }
}

void Session::handle_update(const UpdateMessage& update) {
  if (state_ != SessionState::kEstablished) {
    if (state_ != SessionState::kIdle) {
      stop(NotifCode::kFsmError, 0, "UPDATE in state " + std::string(to_string(state_)));
    }
    return;
  }
  ++stats_.updates_received;
  arm_hold_timer();
  host_.session_update(peer_node_, update);
}

void Session::handle_notification(const NotificationMessage& notif) {
  ++stats_.notifications_received;
  go_idle("received " + notif.to_string());
}

void Session::go_established() {
  state_ = SessionState::kEstablished;
  host_.session_state_dirty();
  arm_hold_timer();
  arm_keepalive_timer();
  logger().debug() << local_.name << " session to AS" << neighbor_.asn << " established";
  host_.session_established(peer_node_);
}

void Session::go_idle(const std::string& reason) {
  const bool was_active = state_ != SessionState::kIdle;
  state_ = SessionState::kIdle;
  peer_router_id_ = 0;
  negotiated_hold_ = 0;
  if (was_active) host_.session_state_dirty();
  cancel_timers();
  ++stats_.resets;
  if (was_active) {
    logger().debug() << local_.name << " session to AS" << neighbor_.asn
                     << " down: " << reason;
    host_.session_down(peer_node_, reason);
  }
}

void Session::arm_hold_timer() {
  hold_timer_.cancel();
  if (negotiated_hold_ == 0) return;  // hold time 0 disables the timer (§4.2)
  hold_timer_ = host_.session_simulator().schedule_after(
      static_cast<sim::Time>(negotiated_hold_) * sim::kSecond,
      [this] {
        NotificationMessage notif;
        notif.code = NotifCode::kHoldTimerExpired;
        host_.session_send(peer_node_, Message{notif}, /*background=*/false);
        go_idle("hold timer expired");
      },
      /*background=*/true);
}

void Session::arm_keepalive_timer() {
  keepalive_timer_.cancel();
  if (negotiated_hold_ == 0) return;
  const sim::Time interval =
      std::max<sim::Time>(1, static_cast<sim::Time>(negotiated_hold_) / 3) * sim::kSecond;
  keepalive_timer_ = host_.session_simulator().schedule_after(
      interval,
      [this] {
        if (state_ == SessionState::kEstablished) {
          Message ka{KeepaliveMessage{}};
          host_.session_send(peer_node_, ka, /*background=*/true);
          arm_keepalive_timer();
        }
      },
      /*background=*/true);
}

void Session::cancel_timers() {
  hold_timer_.cancel();
  keepalive_timer_.cancel();
}

void Session::checkpoint(util::ByteWriter& writer) const {
  writer.u8(static_cast<std::uint8_t>(state_));
  writer.u32(peer_router_id_);
  writer.u16(negotiated_hold_);
}

util::Result<SessionCheckpoint> Session::parse_checkpoint(util::ByteReader& reader) {
  auto state = reader.u8();
  auto peer_id = reader.u32();
  auto hold = reader.u16();
  if (!state || !peer_id || !hold) return util::make_error("session.restore.truncated");
  if (state.value() > static_cast<std::uint8_t>(SessionState::kEstablished)) {
    return util::make_error("session.restore.bad_state");
  }
  SessionCheckpoint checkpoint;
  checkpoint.state = static_cast<SessionState>(state.value());
  checkpoint.peer_router_id = peer_id.value();
  checkpoint.negotiated_hold = hold.value();
  return checkpoint;
}

void Session::apply_checkpoint(const SessionCheckpoint& checkpoint) {
  cancel_timers();
  host_.session_state_dirty();
  state_ = checkpoint.state;
  peer_router_id_ = checkpoint.peer_router_id;
  negotiated_hold_ = checkpoint.negotiated_hold;
  // Re-arm timers implied by the restored state; elapsed fractions are not
  // preserved (documented approximation — fresh timers on the clone).
  if (state_ == SessionState::kEstablished) {
    arm_hold_timer();
    arm_keepalive_timer();
  } else if (state_ != SessionState::kIdle) {
    arm_hold_timer();
  }
}

util::Status Session::restore(util::ByteReader& reader) {
  auto checkpoint = parse_checkpoint(reader);
  if (!checkpoint) return checkpoint.error();
  apply_checkpoint(checkpoint.value());
  return util::Status::success();
}

void Session::reset_for_reuse() {
  cancel_timers();
  host_.session_state_dirty();
  state_ = SessionState::kIdle;
  peer_router_id_ = 0;
  negotiated_hold_ = 0;
  stats_ = {};
}

}  // namespace dice::bgp
