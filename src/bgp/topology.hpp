// Topology builders: system blueprints (router configs + links) for the
// paper's experiments. A SystemBlueprint is everything needed to build a
// live system — or an isolated clone of one (dice/clone.hpp): static
// configuration lives here, dynamic state lives in snapshots.
//
// Includes:
//  - generic shapes (line, ring, full mesh, star) for tests;
//  - the two-tier Internet-like topology with Gao-Rexford (customer/
//    provider/peer) policies — defaults sized to the paper's 27-router
//    demo (3 tier-1, 8 tier-2, 16 stubs, Figure 1);
//  - the classic BAD GADGET dispute wheel (policy-conflict fault class);
//  - fault injectors: prefix hijack (operator mistake) and parser bugs
//    (programming errors).
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/config.hpp"
#include "sim/network.hpp"

namespace dice::bgp {

struct LinkSpec {
  sim::NodeId a = 0;
  sim::NodeId b = 0;
  sim::Time latency = sim::kMillisecond;
};

/// Static description of a whole system; node ids are indices into configs.
struct SystemBlueprint {
  std::vector<RouterConfig> configs;
  std::vector<LinkSpec> links;
  /// Per-node implementation ids (NodeImplementationRegistry keys), indexed
  /// like `configs`. An empty vector, a short vector's missing tail, or an
  /// empty string all mean the default reference engine ("bgp"), so every
  /// pre-heterogeneity blueprint is unchanged.
  std::vector<std::string> implementations;

  [[nodiscard]] std::size_t size() const noexcept { return configs.size(); }
  /// Address book shared by all routers (address -> node id).
  [[nodiscard]] std::map<util::IpAddress, sim::NodeId> address_book() const;
  [[nodiscard]] sim::NodeId node_by_name(std::string_view name) const;
  /// Resolved implementation id for `node` (default-filled, never empty).
  [[nodiscard]] std::string_view implementation_for(std::size_t node) const;
  /// Assigns `id` to `node`, growing `implementations` as needed.
  void set_implementation(std::size_t node, std::string id);
  /// Assigns `id` to every node (the campaign implementation-axis override).
  void set_all_implementations(const std::string& id);
};

/// Conventions used by all builders: router i has address
/// 10.(i/256).(i%256).1 (= the historic 10.0.i.1 for i < 256), router id =
/// address, ASN 65000+i, and originates 10.(100+i).0.0/16 for i < 156,
/// (11+i/256).(i%256).0.0/16 above — injective through 4096 nodes.
[[nodiscard]] util::IpAddress node_address(sim::NodeId i);
[[nodiscard]] Asn node_asn(sim::NodeId i);
[[nodiscard]] util::IpPrefix node_prefix(sim::NodeId i);

/// Chain r0 - r1 - ... - r{n-1}; permissive policies.
[[nodiscard]] SystemBlueprint make_line(std::size_t n);

/// Cycle of n routers; permissive policies.
[[nodiscard]] SystemBlueprint make_ring(std::size_t n);

/// Full mesh of n routers; permissive policies.
[[nodiscard]] SystemBlueprint make_full_mesh(std::size_t n);

/// Hub-and-spoke: node 0 is the hub.
[[nodiscard]] SystemBlueprint make_star(std::size_t leaves);

struct InternetTopologyParams {
  std::size_t tier1 = 3;    ///< fully meshed core (peers)
  std::size_t tier2 = 8;    ///< regional providers, 2 upstreams each
  std::size_t stubs = 16;   ///< edge ASes, 2 upstreams each
  std::uint16_t hold_time = 90;
  sim::Time core_latency = 10 * sim::kMillisecond;
  sim::Time edge_latency = 5 * sim::kMillisecond;
  /// Only every k-th node originates its prefix (1 = all, the default).
  /// Scale benches use this to grow the topology without the route count
  /// (and convergence time) growing quadratically with it.
  std::size_t originate_every = 1;
  /// Nonzero: router i gets ASN asn_base + i instead of the historic
  /// node_asn scheme (which tops out at 65535). Bases above 65535 exercise
  /// the RFC 6793 4-octet-AS path: OPENs carry AS_TRANS plus the AS4
  /// capability. 0 keeps the historic (hash-pinned) numbering.
  Asn asn_base = 0;
};

/// Two-tier Internet-like topology with Gao-Rexford policies. Defaults
/// yield 27 routers, matching the demo in the paper's Figure 1.
/// Local-pref: customer 200, peer 150, provider 100; exports follow the
/// valley-free rules (customer routes go everywhere; peer/provider routes
/// go to customers only), implemented with community tags (tag AS 1000:
/// 1=customer, 2=peer, 3=provider).
[[nodiscard]] SystemBlueprint make_internet(const InternetTopologyParams& params = {});

/// Community tags used by make_internet's Gao-Rexford policies.
namespace gao_rexford {
inline constexpr Community kCustomerRoute = (1000u << 16) | 1;
inline constexpr Community kPeerRoute = (1000u << 16) | 2;
inline constexpr Community kProviderRoute = (1000u << 16) | 3;
}  // namespace gao_rexford

/// Griffin's BAD GADGET: destination node 0 plus a 3-cycle in which every
/// ring node prefers the route through its clockwise neighbor over its
/// direct route — a dispute wheel with no stable assignment. The system
/// oscillates forever; DiCE's oscillation checker flags it (policy-conflict
/// fault class).
[[nodiscard]] SystemBlueprint make_bad_gadget();

/// Operator mistake injector: `attacker` also originates `victim`'s prefix
/// (the classic prefix hijack, e.g. the 2008 YouTube incident). With
/// `more_specific` the attacker announces a /24 inside the victim's /16 —
/// the YouTube-style variant that wins everywhere by longest-prefix match.
void inject_hijack(SystemBlueprint& blueprint, sim::NodeId victim, sim::NodeId attacker,
                   bool more_specific = false);

/// Programming error injector: enables `mask` (bugs.hpp) on one router.
void inject_bug(SystemBlueprint& blueprint, sim::NodeId node, std::uint32_t mask);

}  // namespace dice::bgp
