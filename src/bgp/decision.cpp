#include "bgp/decision.hpp"

namespace dice::bgp {

std::string_view to_string(DecisionRule rule) noexcept {
  switch (rule) {
    case DecisionRule::kEqual: return "equal";
    case DecisionRule::kLocalRoute: return "local-route";
    case DecisionRule::kLocalPref: return "local-pref";
    case DecisionRule::kAsPathLength: return "as-path-length";
    case DecisionRule::kOrigin: return "origin";
    case DecisionRule::kMed: return "med";
    case DecisionRule::kEbgpOverIbgp: return "ebgp-over-ibgp";
    case DecisionRule::kRouterId: return "router-id";
    case DecisionRule::kPeerAddress: return "peer-address";
  }
  return "?";
}

Comparison compare_routes(const Route& a, const Route& b, const DecisionOptions& options) {
  // Locally originated routes win outright (administrative preference).
  if (a.local() != b.local()) {
    return Comparison{a.local() ? -1 : 1, DecisionRule::kLocalRoute};
  }

  // a) Highest LOCAL_PREF.
  const std::uint32_t lp_a = a.attrs.effective_local_pref();
  const std::uint32_t lp_b = b.attrs.effective_local_pref();
  if (lp_a != lp_b) {
    return Comparison{lp_a > lp_b ? -1 : 1, DecisionRule::kLocalPref};
  }

  // b) Shortest AS_PATH.
  const std::size_t len_a = a.attrs.as_path.selection_length();
  const std::size_t len_b = b.attrs.as_path.selection_length();
  if (len_a != len_b) {
    return Comparison{len_a < len_b ? -1 : 1, DecisionRule::kAsPathLength};
  }

  // c) Lowest Origin.
  if (a.attrs.origin != b.attrs.origin) {
    return Comparison{a.attrs.origin < b.attrs.origin ? -1 : 1, DecisionRule::kOrigin};
  }

  // d) Lowest MED, comparable only between routes from the same neighbor AS
  //    unless always_compare_med is set.
  const auto first_a = a.attrs.as_path.first_asn();
  const auto first_b = b.attrs.as_path.first_asn();
  const bool med_comparable =
      options.always_compare_med || (first_a.has_value() && first_a == first_b);
  if (med_comparable) {
    const std::uint32_t med_a = a.attrs.effective_med();
    const std::uint32_t med_b = b.attrs.effective_med();
    if (med_a != med_b) {
      return Comparison{med_a < med_b ? -1 : 1, DecisionRule::kMed};
    }
  }

  // e) Prefer eBGP-learned over iBGP-learned.
  if (a.source.ebgp != b.source.ebgp) {
    return Comparison{a.source.ebgp ? -1 : 1, DecisionRule::kEbgpOverIbgp};
  }

  // f) Lowest peer router id.
  if (a.source.peer_router_id != b.source.peer_router_id) {
    return Comparison{a.source.peer_router_id < b.source.peer_router_id ? -1 : 1,
                      DecisionRule::kRouterId};
  }

  // g) Lowest peer address.
  if (a.source.peer_address != b.source.peer_address) {
    return Comparison{a.source.peer_address < b.source.peer_address ? -1 : 1,
                      DecisionRule::kPeerAddress};
  }

  return Comparison{0, DecisionRule::kEqual};
}

std::size_t select_best(const std::vector<Route>& candidates, const DecisionOptions& options) {
  if (candidates.empty()) return SIZE_MAX;
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    if (compare_routes(candidates[i], candidates[best], options).order < 0) {
      best = i;
    }
  }
  return best;
}

}  // namespace dice::bgp
