// Instrumented BGP UPDATE handler — the DiCE integration point (paper §3).
//
// The paper integrates DiCE with BIRD by marking UPDATE message regions
// (NLRI, path-attribute TLVs) as symbolic and letting the Oasis engine
// explore the handler. This module is the source-level equivalent: it
// re-implements the UPDATE decode path, the import-policy interpreter and
// the route-preference condition over concolic::Sym* types, so that every
// data-dependent branch lands in the active path condition:
//
//   - decode: attribute flags/type/length checks, AS_PATH segment walk,
//     NLRI prefix-length validation — "the first dimension, due to the
//     code implementing BGP";
//   - policy: each config-driven comparison (prefix match, community
//     match, AS-path match) — "the second, as the result of the particular
//     configuration currently in use";
//   - preference: "we treat as symbolic the condition that describes
//     whether a route is the locally most preferred one".
//
// The same injected bugs as the concrete codec (bugs.hpp) fire here via
// sym_assert, which is how the engine *finds* the crashing inputs that are
// then replayed against clones.
//
// A differential property test (tests/bgp_sym_diff_test.cpp) keeps this
// decoder byte-for-byte consistent with the concrete codec on arbitrary
// inputs: same accept/reject outcome, same parsed fields.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bgp/config.hpp"
#include "concolic/sym.hpp"

namespace dice::bgp {

/// Symbolic view of one announced route while it flows through the
/// instrumented import path.
struct SymRouteView {
  concolic::SymU32 prefix_bits{0};
  concolic::SymU8 prefix_len{0};
  concolic::SymU8 origin{0};
  concolic::SymU32 next_hop{0};
  concolic::SymU32 med{0};
  bool has_med = false;
  concolic::SymU32 local_pref{PathAttributes::kDefaultLocalPref};
  bool has_local_pref = false;
  std::vector<concolic::SymU32> path_asns;  ///< flattened AS_PATH
  std::vector<concolic::SymU32> communities;
  std::uint32_t path_selection_length = 0;  ///< concrete §9.1.2.2 length
};

/// Concrete summary of the current best route for one prefix (the loc-rib
/// facts the preference condition compares against).
struct CurrentBest {
  std::uint32_t local_pref = PathAttributes::kDefaultLocalPref;
  std::uint32_t path_length = 0;
};

/// Everything the handler needs from the router it runs inside.
struct SymHandlerEnv {
  const RouterConfig* config = nullptr;
  std::size_t neighbor_index = 0;  ///< whose import policy applies
  std::map<util::IpPrefix, CurrentBest> current_best;  ///< loc-rib snapshot
};

struct SymHandlerResult {
  bool decode_ok = false;
  std::string error_code;          ///< first decode error (empty when ok)
  std::uint32_t withdrawn = 0;
  std::uint32_t announced = 0;     ///< NLRI entries parsed
  std::uint32_t accepted = 0;      ///< passed import policy
  std::uint32_t rejected = 0;
  std::uint32_t preferred = 0;     ///< accepted AND would become new best
};

/// Runs the instrumented handler over ctx.input(), which holds the *body*
/// of an UPDATE message (everything after the 19-byte header — the region
/// the paper marks symbolic). Branches land in ctx.path(); injected bugs
/// (config->bug_mask) raise concolic::CrashSignal.
[[nodiscard]] SymHandlerResult sym_handle_update(concolic::SymCtx& ctx,
                                                 const SymHandlerEnv& env);

/// Wraps an UPDATE body into a full wire message (header prepended) so
/// engine-generated bodies can be injected into clones as real traffic.
[[nodiscard]] util::Bytes wrap_update_body(const util::Bytes& body);

/// Strips the header from a full UPDATE message (inverse of wrap).
[[nodiscard]] std::optional<util::Bytes> unwrap_update_body(const util::Bytes& message);

}  // namespace dice::bgp
