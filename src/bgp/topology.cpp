#include "bgp/topology.hpp"

#include <cassert>

#include "bgp/node_impl.hpp"
#include "util/strings.hpp"

namespace dice::bgp {

std::map<util::IpAddress, sim::NodeId> SystemBlueprint::address_book() const {
  std::map<util::IpAddress, sim::NodeId> book;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    book[configs[i].address] = static_cast<sim::NodeId>(i);
  }
  return book;
}

sim::NodeId SystemBlueprint::node_by_name(std::string_view name) const {
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (configs[i].name == name) return static_cast<sim::NodeId>(i);
  }
  return sim::kInvalidNode;
}

std::string_view SystemBlueprint::implementation_for(std::size_t node) const {
  if (node < implementations.size() && !implementations[node].empty()) {
    return implementations[node];
  }
  return kBgpRouterImplementationId;
}

void SystemBlueprint::set_implementation(std::size_t node, std::string id) {
  if (implementations.size() <= node) implementations.resize(node + 1);
  implementations[node] = std::move(id);
}

void SystemBlueprint::set_all_implementations(const std::string& id) {
  implementations.assign(configs.size(), id);
}

util::IpAddress node_address(sim::NodeId i) {
  // 10.(i/256).(i%256).1 — identical to the historic 10.0.i.1 for i < 256
  // (so snapshot hash pins on small topologies hold), unique through the
  // 4096-node builder ceiling.
  return util::IpAddress{10, static_cast<std::uint8_t>(i >> 8),
                         static_cast<std::uint8_t>(i & 0xff), 1};
}

Asn node_asn(sim::NodeId i) {
  // The OPEN message carries a 2-octet AS (AS4 out of scope), so 65000+i
  // wraps to 0 at i = 536 and the session flaps forever on bad_peer_as.
  // Keep the historic scheme below the ceiling (hash-pinned topologies) and
  // allocate 1..3560 above it — nonzero, unique, disjoint from 65000+.
  return i < 536 ? 65000 + i : i - 535;
}

util::IpPrefix node_prefix(sim::NodeId i) {
  // Historic scheme 10.(100+i).0.0/16 wraps at i = 156; keep it verbatim
  // below that (hash-pinned topologies) and switch to per-node /16s out of
  // 11.0.0.0+ above it — (11 + i/256).(i%256) is injective and disjoint
  // from both 10.x node addresses and the small-i prefixes.
  if (i < 156) {
    return util::IpPrefix{util::IpAddress{10, static_cast<std::uint8_t>(100 + i), 0, 0},
                          16};
  }
  return util::IpPrefix{util::IpAddress{static_cast<std::uint8_t>(11 + (i >> 8)),
                                        static_cast<std::uint8_t>(i & 0xff), 0, 0},
                        16};
}

namespace {

RouterConfig base_config(sim::NodeId i, std::uint16_t hold_time = 90) {
  RouterConfig config;
  config.name = util::format("r%u", i);
  config.address = node_address(i);
  config.router_id = config.address.value();
  config.asn = node_asn(i);
  config.hold_time = hold_time;
  config.networks.push_back(node_prefix(i));
  return config;
}

NeighborConfig permissive_neighbor(sim::NodeId peer) {
  NeighborConfig n;
  n.address = node_address(peer);
  n.asn = node_asn(peer);
  n.import_policy = Policy::accept_all();
  n.export_policy = Policy::accept_all();
  return n;
}

void add_link(SystemBlueprint& bp, sim::NodeId a, sim::NodeId b, sim::Time latency) {
  bp.links.push_back(LinkSpec{a, b, latency});
  bp.configs[a].neighbors.push_back(permissive_neighbor(b));
  bp.configs[b].neighbors.push_back(permissive_neighbor(a));
}

}  // namespace

SystemBlueprint make_line(std::size_t n) {
  SystemBlueprint bp;
  for (std::size_t i = 0; i < n; ++i) bp.configs.push_back(base_config(static_cast<sim::NodeId>(i)));
  for (std::size_t i = 0; i + 1 < n; ++i) {
    add_link(bp, static_cast<sim::NodeId>(i), static_cast<sim::NodeId>(i + 1),
             sim::kMillisecond);
  }
  return bp;
}

SystemBlueprint make_ring(std::size_t n) {
  SystemBlueprint bp = make_line(n);
  if (n > 2) add_link(bp, static_cast<sim::NodeId>(n - 1), 0, sim::kMillisecond);
  return bp;
}

SystemBlueprint make_full_mesh(std::size_t n) {
  SystemBlueprint bp;
  for (std::size_t i = 0; i < n; ++i) bp.configs.push_back(base_config(static_cast<sim::NodeId>(i)));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      add_link(bp, static_cast<sim::NodeId>(i), static_cast<sim::NodeId>(j),
               sim::kMillisecond);
    }
  }
  return bp;
}

SystemBlueprint make_star(std::size_t leaves) {
  SystemBlueprint bp;
  bp.configs.push_back(base_config(0));
  for (std::size_t i = 1; i <= leaves; ++i) {
    bp.configs.push_back(base_config(static_cast<sim::NodeId>(i)));
    add_link(bp, 0, static_cast<sim::NodeId>(i), sim::kMillisecond);
  }
  return bp;
}

// ---------------------------------------------------------------------------
// Internet-like topology with Gao-Rexford policies
// ---------------------------------------------------------------------------

namespace {

/// Relationship of *the neighbor* relative to the local AS.
enum class PeerKind : std::uint8_t { kCustomer, kPeer, kProvider };

/// Import: tag + local-pref per Gao-Rexford; also drop our own tag
/// collisions (defensive, tags are re-assigned on every import).
Policy gao_import(PeerKind kind) {
  using gao_rexford::kCustomerRoute;
  using gao_rexford::kPeerRoute;
  using gao_rexford::kProviderRoute;
  Community tag = kProviderRoute;
  std::uint32_t local_pref = 100;
  switch (kind) {
    case PeerKind::kCustomer:
      tag = kCustomerRoute;
      local_pref = 200;
      break;
    case PeerKind::kPeer:
      tag = kPeerRoute;
      local_pref = 150;
      break;
    case PeerKind::kProvider:
      tag = kProviderRoute;
      local_pref = 100;
      break;
  }
  Policy policy;
  PolicyRule rule;
  // Strip stale relationship tags, then stamp the fresh one.
  rule.actions.push_back(Action{Action::Kind::kRemoveCommunity, kCustomerRoute});
  rule.actions.push_back(Action{Action::Kind::kRemoveCommunity, kPeerRoute});
  rule.actions.push_back(Action{Action::Kind::kRemoveCommunity, kProviderRoute});
  rule.actions.push_back(Action{Action::Kind::kAddCommunity, tag});
  rule.actions.push_back(Action{Action::Kind::kSetLocalPref, local_pref});
  rule.verdict = Verdict::kAccept;
  policy.rules.push_back(std::move(rule));
  return policy;
}

/// Export: valley-free. To customers everything goes; to peers/providers
/// only customer routes and locally originated ones (untagged).
Policy gao_export(PeerKind kind) {
  using gao_rexford::kPeerRoute;
  using gao_rexford::kProviderRoute;
  Policy policy;
  if (kind != PeerKind::kCustomer) {
    PolicyRule reject_peer;
    reject_peer.matches.push_back(
        Match{Match::Kind::kCommunity, {}, 0, kPeerRoute, {}});
    reject_peer.verdict = Verdict::kReject;
    policy.rules.push_back(std::move(reject_peer));

    PolicyRule reject_provider;
    reject_provider.matches.push_back(
        Match{Match::Kind::kCommunity, {}, 0, kProviderRoute, {}});
    reject_provider.verdict = Verdict::kReject;
    policy.rules.push_back(std::move(reject_provider));
  }
  PolicyRule accept;
  accept.verdict = Verdict::kAccept;
  policy.rules.push_back(std::move(accept));
  return policy;
}

void add_gao_link(SystemBlueprint& bp, sim::NodeId upper, sim::NodeId lower, bool peering,
                  sim::Time latency) {
  bp.links.push_back(LinkSpec{upper, lower, latency});

  NeighborConfig from_upper;  // upper's view of lower
  from_upper.address = node_address(lower);
  from_upper.asn = node_asn(lower);
  NeighborConfig from_lower;  // lower's view of upper
  from_lower.address = node_address(upper);
  from_lower.asn = node_asn(upper);

  if (peering) {
    from_upper.description = "peer";
    from_lower.description = "peer";
    from_upper.import_policy = gao_import(PeerKind::kPeer);
    from_upper.export_policy = gao_export(PeerKind::kPeer);
    from_lower.import_policy = gao_import(PeerKind::kPeer);
    from_lower.export_policy = gao_export(PeerKind::kPeer);
  } else {
    from_upper.description = "customer";
    from_lower.description = "provider";
    from_upper.import_policy = gao_import(PeerKind::kCustomer);
    from_upper.export_policy = gao_export(PeerKind::kCustomer);
    from_lower.import_policy = gao_import(PeerKind::kProvider);
    from_lower.export_policy = gao_export(PeerKind::kProvider);
  }
  bp.configs[upper].neighbors.push_back(std::move(from_upper));
  bp.configs[lower].neighbors.push_back(std::move(from_lower));
}

}  // namespace

SystemBlueprint make_internet(const InternetTopologyParams& params) {
  SystemBlueprint bp;
  const std::size_t total = params.tier1 + params.tier2 + params.stubs;
  assert(total <= 4096);  // address/prefix schemes are injective to here
  for (std::size_t i = 0; i < total; ++i) {
    bp.configs.push_back(base_config(static_cast<sim::NodeId>(i), params.hold_time));
    // Thinned origination (scale benches): only every k-th node keeps its
    // prefix, so route count stays bounded while the session/topology
    // footprint grows. originate_every = 1 (default) originates everywhere.
    if (params.originate_every > 1 && i % params.originate_every != 0) {
      bp.configs.back().networks.clear();
    }
  }

  const auto t1 = [&](std::size_t i) { return static_cast<sim::NodeId>(i); };
  const auto t2 = [&](std::size_t i) { return static_cast<sim::NodeId>(params.tier1 + i); };
  const auto stub = [&](std::size_t i) {
    return static_cast<sim::NodeId>(params.tier1 + params.tier2 + i);
  };

  // Tier-1 clique: settlement-free peering.
  for (std::size_t i = 0; i < params.tier1; ++i) {
    for (std::size_t j = i + 1; j < params.tier1; ++j) {
      add_gao_link(bp, t1(i), t1(j), /*peering=*/true, params.core_latency);
    }
  }

  // Each tier-2 buys transit from two tier-1s (diverse upstreams) and peers
  // with the next tier-2 (regional peering ring).
  for (std::size_t i = 0; i < params.tier2; ++i) {
    if (params.tier1 > 0) {
      add_gao_link(bp, t1(i % params.tier1), t2(i), /*peering=*/false, params.core_latency);
      if (params.tier1 > 1) {
        add_gao_link(bp, t1((i + 1) % params.tier1), t2(i), /*peering=*/false,
                     params.core_latency);
      }
    }
    if (params.tier2 > 2) {
      add_gao_link(bp, t2(i), t2((i + 1) % params.tier2), /*peering=*/true,
                   params.edge_latency);
    }
  }

  // Each stub buys transit from two tier-2 providers.
  for (std::size_t i = 0; i < params.stubs; ++i) {
    if (params.tier2 > 0) {
      add_gao_link(bp, t2(i % params.tier2), stub(i), /*peering=*/false, params.edge_latency);
      if (params.tier2 > 1) {
        add_gao_link(bp, t2((i + 1) % params.tier2), stub(i), /*peering=*/false,
                     params.edge_latency);
      }
    }
  }

  // Optional flat renumbering (4-octet-AS audits): rewrite every config ASN
  // to asn_base + node and fix up the neighbor references through the
  // address book, after all links exist.
  if (params.asn_base != 0) {
    const std::map<util::IpAddress, sim::NodeId> book = bp.address_book();
    for (std::size_t i = 0; i < bp.configs.size(); ++i) {
      bp.configs[i].asn = params.asn_base + static_cast<Asn>(i);
    }
    for (RouterConfig& config : bp.configs) {
      for (NeighborConfig& neighbor : config.neighbors) {
        auto it = book.find(neighbor.address);
        if (it != book.end()) neighbor.asn = params.asn_base + it->second;
      }
    }
  }
  return bp;
}

// ---------------------------------------------------------------------------
// BAD GADGET
// ---------------------------------------------------------------------------

SystemBlueprint make_bad_gadget() {
  // Node 0: destination; nodes 1..3: the wheel. Node i prefers routes
  // heard from its clockwise ring neighbor over its direct route to 0,
  // and each ring node exports to its counter-clockwise neighbor only its
  // direct path (reject anything that already went around the wheel).
  SystemBlueprint bp;
  for (sim::NodeId i = 0; i < 4; ++i) {
    RouterConfig config = base_config(i, /*hold_time=*/0);  // no keepalive noise
    if (i != 0) config.networks.clear();  // only node 0 originates
    bp.configs.push_back(std::move(config));
  }

  const auto ring_next = [](sim::NodeId i) -> sim::NodeId {  // clockwise
    return i == 3 ? 1 : i + 1;
  };

  // Spokes: each ring node connects to the destination.
  for (sim::NodeId i = 1; i <= 3; ++i) {
    bp.links.push_back(LinkSpec{0, i, sim::kMillisecond});
    NeighborConfig hub_side = permissive_neighbor(i);
    bp.configs[0].neighbors.push_back(hub_side);

    NeighborConfig spoke_side;  // ring node's view of the destination
    spoke_side.address = node_address(0);
    spoke_side.asn = node_asn(0);
    PolicyRule direct;
    direct.actions.push_back(Action{Action::Kind::kSetLocalPref, 100});
    direct.verdict = Verdict::kAccept;
    spoke_side.import_policy.rules.push_back(std::move(direct));
    spoke_side.import_policy.default_accept = false;
    spoke_side.export_policy = Policy::accept_all();
    bp.configs[i].neighbors.push_back(std::move(spoke_side));
  }

  // Ring links i -> next(i): i prefers routes from next(i) (localpref 200);
  // next(i) exports to i only paths that avoid next(next(i)) — i.e. only
  // its direct path — which is exactly Griffin's BAD GADGET path system.
  for (sim::NodeId i = 1; i <= 3; ++i) {
    const sim::NodeId j = ring_next(i);
    bp.links.push_back(LinkSpec{i, j, sim::kMillisecond});

    NeighborConfig i_view;  // i's view of j (clockwise neighbor)
    i_view.address = node_address(j);
    i_view.asn = node_asn(j);
    PolicyRule prefer;
    prefer.actions.push_back(Action{Action::Kind::kSetLocalPref, 200});
    prefer.verdict = Verdict::kAccept;
    i_view.import_policy.rules.push_back(std::move(prefer));
    i_view.import_policy.default_accept = false;
    {  // i exports to j only i's direct path (no wheel paths)
      PolicyRule no_wheel;
      no_wheel.matches.push_back(
          Match{Match::Kind::kAsPathContains, {}, node_asn(ring_next(i)), 0, {}});
      no_wheel.verdict = Verdict::kReject;
      i_view.export_policy.rules.push_back(std::move(no_wheel));
      PolicyRule accept;
      accept.verdict = Verdict::kAccept;
      i_view.export_policy.rules.push_back(std::move(accept));
      i_view.export_policy.default_accept = false;
    }
    bp.configs[i].neighbors.push_back(std::move(i_view));

    NeighborConfig j_view;  // j's view of i (counter-clockwise neighbor)
    j_view.address = node_address(i);
    j_view.asn = node_asn(i);
    // j does not use routes heard from its counter-clockwise neighbor
    // (keeps the gadget minimal: only clockwise preference edges exist).
    j_view.import_policy = Policy::reject_all();
    {  // j exports to i only j's direct path
      PolicyRule no_wheel;
      no_wheel.matches.push_back(
          Match{Match::Kind::kAsPathContains, {}, node_asn(ring_next(j)), 0, {}});
      no_wheel.verdict = Verdict::kReject;
      j_view.export_policy.rules.push_back(std::move(no_wheel));
      PolicyRule accept;
      accept.verdict = Verdict::kAccept;
      j_view.export_policy.rules.push_back(std::move(accept));
      j_view.export_policy.default_accept = false;
    }
    bp.configs[j].neighbors.push_back(std::move(j_view));
  }
  return bp;
}

void inject_hijack(SystemBlueprint& blueprint, sim::NodeId victim, sim::NodeId attacker,
                   bool more_specific) {
  assert(victim < blueprint.configs.size() && attacker < blueprint.configs.size());
  const util::IpPrefix owned = node_prefix(victim);
  const util::IpPrefix stolen =
      more_specific
          ? util::IpPrefix{owned.address(), static_cast<std::uint8_t>(owned.length() + 8)}
          : owned;
  auto& networks = blueprint.configs[attacker].networks;
  if (std::find(networks.begin(), networks.end(), stolen) == networks.end()) {
    networks.push_back(stolen);
  }
}

void inject_bug(SystemBlueprint& blueprint, sim::NodeId node, std::uint32_t mask) {
  assert(node < blueprint.configs.size());
  blueprint.configs[node].bug_mask |= mask;
}

}  // namespace dice::bgp
