#include "bgp/workload.hpp"

#include "bgp/codec.hpp"

namespace dice::bgp {

UpdateMessage FeedEvent::to_update() const {
  UpdateMessage update;
  if (announce) {
    update.attrs = attrs;
    update.nlri.push_back(prefix);
  } else {
    update.withdrawn.push_back(prefix);
  }
  return update;
}

RouteFeedGenerator::RouteFeedGenerator(WorkloadOptions options, std::uint64_t seed)
    : options_(options),
      rng_(seed),
      zipf_(options.prefix_universe, options.zipf_exponent),
      announced_(options.prefix_universe, false) {}

util::IpPrefix RouteFeedGenerator::prefix_for(std::size_t rank) const {
  // Pack the rank into the third octet group of the /24 universe; wraps
  // within the base /8 for very large universes.
  const std::uint32_t bits =
      options_.prefix_base + (static_cast<std::uint32_t>(rank) << 8);
  return util::IpPrefix{util::IpAddress{bits}, options_.prefix_length};
}

FeedEvent RouteFeedGenerator::next(util::IpAddress next_hop) {
  const std::size_t rank = zipf_.sample(rng_);
  FeedEvent event;
  event.prefix = prefix_for(rank);

  const bool can_withdraw = announced_[rank];
  event.announce = !(can_withdraw && rng_.chance(options_.withdraw_ratio));

  if (!event.announce) {
    announced_[rank] = false;
    --announced_count_;
    return event;
  }

  if (!announced_[rank]) {
    announced_[rank] = true;
    ++announced_count_;
  }
  event.attrs.origin = rng_.chance(0.8) ? Origin::kIgp : Origin::kIncomplete;
  event.attrs.next_hop = next_hop;
  const std::size_t path_len = static_cast<std::size_t>(
      rng_.range(static_cast<std::int64_t>(options_.min_path_len),
                 static_cast<std::int64_t>(options_.max_path_len)));
  std::vector<Asn> path;
  path.reserve(path_len);
  for (std::size_t i = 0; i < path_len; ++i) {
    path.push_back(options_.origin_asn_base +
                   static_cast<Asn>(rng_.below(options_.origin_asn_count)));
  }
  // Stable origin per prefix rank keeps origin checks meaningful: the same
  // prefix is always originated by the same AS in a healthy feed.
  if (!path.empty()) {
    path.back() =
        options_.origin_asn_base + static_cast<Asn>(rank % options_.origin_asn_count);
  }
  event.attrs.as_path = AsPath{std::move(path)};
  if (rng_.chance(options_.med_probability)) {
    event.attrs.med = static_cast<std::uint32_t>(rng_.below(1000));
  }
  const std::size_t communities = rng_.below(options_.max_communities + 1);
  for (std::size_t i = 0; i < communities; ++i) {
    event.attrs.add_community(
        make_community(static_cast<std::uint16_t>(options_.origin_asn_base),
                       static_cast<std::uint16_t>(rng_.below(1024))));
  }
  return event;
}

std::vector<util::Bytes> RouteFeedGenerator::encoded_batch(std::size_t n,
                                                           util::IpAddress next_hop) {
  std::vector<util::Bytes> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto encoded = encode(Message{next(next_hop).to_update()});
    if (encoded.ok()) out.push_back(std::move(encoded).take());
  }
  return out;
}

}  // namespace dice::bgp
