#include "shard/scenario_set.hpp"

#include "bgp/bugs.hpp"
#include "bgp/topology.hpp"

namespace dice::shard {

util::Result<std::vector<explore::ScenarioSpec>> resolve_scenario_set(
    std::string_view name) {
  if (name == "bench") return explore::default_bench_scenarios();
  if (name == "topology27") {
    // Must stay byte-for-byte the receipt construction (svc_soak_test,
    // bench_differential): this blueprint is what the pinned
    // 63f680b04458c2a9 hash is measured on.
    bgp::SystemBlueprint fig1 = bgp::make_internet();
    bgp::inject_hijack(fig1, /*victim=*/12, /*attacker=*/20, /*more_specific=*/true);
    bgp::inject_bug(fig1, /*node=*/5, bgp::bugs::kCommunityLength);
    std::vector<explore::ScenarioSpec> specs;
    specs.push_back({"topology27", std::move(fig1)});
    return specs;
  }
  if (name == "smoke") {
    std::vector<explore::ScenarioSpec> specs;
    specs.push_back({"ring6", bgp::make_ring(6)});
    specs.push_back({"bad-gadget", bgp::make_bad_gadget()});
    return specs;
  }
  return util::make_error("shard.scenario_set.unknown",
                          "no scenario set named '" + std::string(name) + "'");
}

std::vector<std::string> scenario_set_names() { return {"bench", "smoke", "topology27"}; }

}  // namespace dice::shard
