// shard::ShardCoordinator — deal a campaign's cell space to worker
// PROCESSES and merge their results byte-identically (docs/SHARDING.md).
//
// The deal: canonical cells are assigned round-robin (cell i -> shard
// i % processes) — deterministic, and it spreads scenarios/bootstrap keys
// across workers the way the in-process matrix's interleave spreads them
// across threads. Each shard is executed by a freshly spawned
// dice_shard_worker talking length-prefixed DSHD frames over pipes (job in
// on stdin, results out on stdout).
//
// The merge: incoming cell results are BUFFERED per attempt and committed
// to the shared explore::CellMerger only when the worker's kShardDone
// receipt arrives and its cell count matches the deal — so the canonical
// observer stream and the fault ledger only ever see whole, validated
// shards, and the merged fault bytes equal the single-process run's
// (receipt: sharded topology27 == 63f680b04458c2a9 at 1/2/4 workers).
//
// Failure semantics (the DCO-analyzer point — the harness itself must be
// controllable and observable): a worker that crashes (EOF before done),
// stalls past the inactivity deadline (SIGKILL), or emits a corrupt or
// protocol-violating frame fails its ATTEMPT: buffered results are rolled
// back and the shard is re-dealt to a fresh worker, up to
// ShardOptions::max_redeals times. Cells are deterministic, so a re-dealt
// shard reproduces the identical bytes. A shard that exhausts its retries
// becomes a typed ShardLoss — its cells flush as skipped (started=false),
// the result says so — never a coordinator crash, never a silently short
// merge.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "explore/campaign.hpp"
#include "explore/control.hpp"
#include "explore/matrix.hpp"
#include "util/result.hpp"

namespace dice::shard {

struct ShardOptions {
  /// Worker PROCESS count == shard count. 1 is a valid degenerate deal
  /// (everything through one worker — the cheapest cross-process receipt).
  std::size_t processes = 2;
  /// Path to the dice_shard_worker binary (tests get it from the build).
  std::string worker_path{};
  /// Named scenario set both sides resolve (shard::resolve_scenario_set);
  /// blueprints never travel on the wire.
  std::string scenario_set{};
  /// Re-deal attempts per shard AFTER the first (2 = up to 3 spawns).
  std::size_t max_redeals = 2;
  /// A worker producing no bytes for this long is presumed hung: SIGKILL +
  /// attempt failure. Generous by default — a stalled shard costs one
  /// deadline, a false positive costs a whole re-deal.
  std::uint64_t inactivity_timeout_ms = 60'000;
  /// TEST SEAM: extra argv appended to each shard's FIRST spawn only
  /// (worker chaos flags — crash/stall/corrupt). Re-deals spawn clean, so
  /// an injected failure is recovered by the normal retry path. Empty in
  /// production.
  std::vector<std::string> first_attempt_args{};

  /// Rejects nonsense ("shard.options.*"): zero processes, empty
  /// worker_path, a scenario set that does not resolve.
  [[nodiscard]] util::Status validate() const;
};

/// One shard whose every attempt failed: its cells were NOT executed. The
/// merged result flushes them as skipped; `code`/`detail` carry the final
/// attempt's typed failure.
struct ShardLoss {
  std::size_t shard = 0;
  std::vector<std::size_t> cells;  ///< canonical indices lost
  std::string code;
  std::string detail;
};

/// One failed attempt (re-dealt or terminal), for diagnostics: every
/// injected fault in the coordinator tests shows up here typed.
struct ShardAttemptFailure {
  std::size_t shard = 0;
  std::size_t attempt = 0;  ///< 0 = first spawn
  std::string code;   ///< shard.worker.crash / shard.worker.stall /
                      ///< shard.wire.* / shard.worker.protocol
  std::string detail;
};

struct ShardRunResult {
  /// The merged campaign-shaped result: cells in canonical order, faults
  /// in canonical ledger order (byte-identical to single-process), the
  /// union of worker unsat keys. Pool/cache stats stay zero — they live in
  /// the worker processes.
  explore::MatrixResult matrix;
  std::size_t shards = 0;
  std::size_t workers_spawned = 0;
  std::size_t redeals = 0;
  std::vector<ShardAttemptFailure> failures;
  std::vector<ShardLoss> losses;

  [[nodiscard]] bool complete() const noexcept { return losses.empty(); }
};

class ShardCoordinator {
 public:
  /// `campaign` carries every determinism-relevant knob (its pointer
  /// fields — pool, caches, observers — are ignored; workers own their
  /// own). Pass validated options; `options.validate()` is re-checked at
  /// run().
  ShardCoordinator(explore::CampaignOptions campaign, ShardOptions options);

  /// Deals, spawns, merges; blocks until every shard completed or was
  /// declared lost. Streams the merged canonical cell stream to `observer`
  /// (may be null) exactly as an in-process Campaign would. `unsat_seed`
  /// rides into every worker's job frame (warm start); may be null.
  /// Fails (shard.options.* / shard.spawn.*) only on configuration or
  /// resource errors — worker misbehavior is never an error here, it is
  /// typed loss data in the result.
  [[nodiscard]] util::Result<ShardRunResult> run(
      explore::CampaignObserver* observer = nullptr,
      const std::vector<std::uint64_t>* unsat_seed = nullptr);

  [[nodiscard]] const ShardOptions& options() const noexcept { return options_; }

 private:
  explore::CampaignOptions campaign_;
  ShardOptions options_;
};

}  // namespace dice::shard
