#include "shard/wire.hpp"

#include <algorithm>
#include <bit>

#include "util/hash.hpp"

namespace dice::shard {

namespace {

// --- primitive helpers -----------------------------------------------------

void put_bool(util::ByteWriter& out, bool v) { out.u8(v ? 1 : 0); }

[[nodiscard]] util::Result<bool> get_bool(util::ByteReader& reader, const char* what) {
  auto v = reader.u8();
  if (!v) return v.error();
  if (v.value() > 1) {
    return util::make_error("shard.wire.value", std::string("bool out of range: ") + what);
  }
  return v.value() == 1;
}

void put_f64(util::ByteWriter& out, double v) { out.u64(std::bit_cast<std::uint64_t>(v)); }

[[nodiscard]] util::Result<double> get_f64(util::ByteReader& reader) {
  auto v = reader.u64();
  if (!v) return v.error();
  return std::bit_cast<double>(v.value());
}

void put_bytes(util::ByteWriter& out, const util::Bytes& data) {
  out.vu64(data.size());
  out.raw(data);
}

[[nodiscard]] util::Result<util::Bytes> get_bytes(util::ByteReader& reader) {
  auto size = reader.vu64();
  if (!size) return size.error();
  auto body = reader.raw(size.value());
  if (!body) return body.error();
  return util::Bytes(body.value().begin(), body.value().end());
}

void put_u64s(util::ByteWriter& out, const std::vector<std::uint64_t>& values) {
  out.vu64(values.size());
  for (const std::uint64_t v : values) out.u64(v);
}

[[nodiscard]] util::Result<std::vector<std::uint64_t>> get_u64s(util::ByteReader& reader) {
  auto count = reader.vu64();
  if (!count) return count.error();
  std::vector<std::uint64_t> values;
  values.reserve(std::min<std::uint64_t>(count.value(), 1u << 16));
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    auto v = reader.u64();
    if (!v) return v.error();
    values.push_back(v.value());
  }
  return values;
}

// --- field codecs ----------------------------------------------------------

[[nodiscard]] util::Result<explore::StrategyKind> get_strategy(util::ByteReader& reader) {
  auto v = reader.u8();
  if (!v) return v.error();
  if (v.value() > static_cast<std::uint8_t>(explore::StrategyKind::kRandom)) {
    return util::make_error("shard.wire.value",
                            "strategy kind out of range: " + std::to_string(v.value()));
  }
  return static_cast<explore::StrategyKind>(v.value());
}

void encode_fault(util::ByteWriter& out, const core::FaultReport& fault) {
  out.u8(static_cast<std::uint8_t>(fault.fault_class));
  out.str(fault.check);
  out.str(fault.description);
  out.u32(fault.node);
  out.u64(fault.episode);
  out.u32(fault.explorer);
  put_bytes(out, fault.input);
  put_bool(out, fault.potential);
}

[[nodiscard]] util::Result<core::FaultReport> decode_fault(util::ByteReader& reader) {
  core::FaultReport fault;
  auto fault_class = reader.u8();
  if (!fault_class) return fault_class.error();
  if (fault_class.value() >
      static_cast<std::uint8_t>(core::FaultClass::kImplementationDivergence)) {
    return util::make_error(
        "shard.wire.value", "fault class out of range: " + std::to_string(fault_class.value()));
  }
  fault.fault_class = static_cast<core::FaultClass>(fault_class.value());
  auto check = reader.str();
  if (!check) return check.error();
  fault.check = std::move(check).take();
  auto description = reader.str();
  if (!description) return description.error();
  fault.description = std::move(description).take();
  auto node = reader.u32();
  if (!node) return node.error();
  fault.node = node.value();
  auto episode = reader.u64();
  if (!episode) return episode.error();
  fault.episode = episode.value();
  auto explorer = reader.u32();
  if (!explorer) return explorer.error();
  fault.explorer = explorer.value();
  auto input = get_bytes(reader);
  if (!input) return input.error();
  fault.input = std::move(input).take();
  auto potential = get_bool(reader, "fault.potential");
  if (!potential) return potential.error();
  fault.potential = potential.value();
  return fault;
}

void encode_spec(util::ByteWriter& out, const WireCampaignSpec& spec) {
  out.str(spec.scenario_set);
  out.vu64(spec.strategies.size());
  for (const explore::StrategyKind kind : spec.strategies) {
    out.u8(static_cast<std::uint8_t>(kind));
  }
  put_u64s(out, spec.seeds);
  out.vu64(spec.implementations.size());
  for (const std::string& impl : spec.implementations) out.str(impl);
  out.vu64(spec.episodes_per_cell);
  out.vu64(spec.inputs_per_episode);
  out.vu64(spec.bootstrap_events);
  out.vu64(spec.clone_event_budget);
  out.u64(spec.clone_time_budget);
  put_bool(out, spec.include_baseline_clone);
  put_bool(out, spec.live_state_cache);
  put_bool(out, spec.share_solver_cache);
  put_bool(out, spec.prepared_clones);
  put_bool(out, spec.delta_snapshots);
  out.vu64(spec.workers);
  put_bool(out, spec.nested);
  out.u64(spec.rng_seed);
  put_bool(out, spec.strategy_seed.has_value());
  if (spec.strategy_seed.has_value()) out.u64(*spec.strategy_seed);
  out.u32(spec.oscillation_threshold);
  put_bool(out, spec.oscillation_early_exit);
  put_bool(out, spec.bootstrap_early_exit);
}

[[nodiscard]] util::Result<WireCampaignSpec> decode_spec(util::ByteReader& reader) {
  WireCampaignSpec spec;
  auto scenario_set = reader.str();
  if (!scenario_set) return scenario_set.error();
  spec.scenario_set = std::move(scenario_set).take();
  auto strategy_count = reader.vu64();
  if (!strategy_count) return strategy_count.error();
  for (std::uint64_t i = 0; i < strategy_count.value(); ++i) {
    auto kind = get_strategy(reader);
    if (!kind) return kind.error();
    spec.strategies.push_back(kind.value());
  }
  auto seeds = get_u64s(reader);
  if (!seeds) return seeds.error();
  spec.seeds = std::move(seeds).take();
  auto impl_count = reader.vu64();
  if (!impl_count) return impl_count.error();
  for (std::uint64_t i = 0; i < impl_count.value(); ++i) {
    auto impl = reader.str();
    if (!impl) return impl.error();
    spec.implementations.push_back(std::move(impl).take());
  }
  auto episodes = reader.vu64();
  if (!episodes) return episodes.error();
  spec.episodes_per_cell = episodes.value();
  auto inputs = reader.vu64();
  if (!inputs) return inputs.error();
  spec.inputs_per_episode = inputs.value();
  auto bootstrap = reader.vu64();
  if (!bootstrap) return bootstrap.error();
  spec.bootstrap_events = bootstrap.value();
  auto clone_events = reader.vu64();
  if (!clone_events) return clone_events.error();
  spec.clone_event_budget = clone_events.value();
  auto clone_time = reader.u64();
  if (!clone_time) return clone_time.error();
  spec.clone_time_budget = clone_time.value();
  auto baseline = get_bool(reader, "include_baseline_clone");
  if (!baseline) return baseline.error();
  spec.include_baseline_clone = baseline.value();
  auto live_cache = get_bool(reader, "live_state_cache");
  if (!live_cache) return live_cache.error();
  spec.live_state_cache = live_cache.value();
  auto share_solver = get_bool(reader, "share_solver_cache");
  if (!share_solver) return share_solver.error();
  spec.share_solver_cache = share_solver.value();
  auto prepared = get_bool(reader, "prepared_clones");
  if (!prepared) return prepared.error();
  spec.prepared_clones = prepared.value();
  auto delta = get_bool(reader, "delta_snapshots");
  if (!delta) return delta.error();
  spec.delta_snapshots = delta.value();
  auto workers = reader.vu64();
  if (!workers) return workers.error();
  spec.workers = workers.value();
  auto nested = get_bool(reader, "nested");
  if (!nested) return nested.error();
  spec.nested = nested.value();
  auto rng_seed = reader.u64();
  if (!rng_seed) return rng_seed.error();
  spec.rng_seed = rng_seed.value();
  auto has_strategy_seed = get_bool(reader, "strategy_seed.has_value");
  if (!has_strategy_seed) return has_strategy_seed.error();
  if (has_strategy_seed.value()) {
    auto strategy_seed = reader.u64();
    if (!strategy_seed) return strategy_seed.error();
    spec.strategy_seed = strategy_seed.value();
  }
  auto oscillation = reader.u32();
  if (!oscillation) return oscillation.error();
  spec.oscillation_threshold = oscillation.value();
  auto osc_exit = get_bool(reader, "oscillation_early_exit");
  if (!osc_exit) return osc_exit.error();
  spec.oscillation_early_exit = osc_exit.value();
  auto boot_exit = get_bool(reader, "bootstrap_early_exit");
  if (!boot_exit) return boot_exit.error();
  spec.bootstrap_early_exit = boot_exit.value();
  return spec;
}

void encode_cell(util::ByteWriter& out, const explore::CellResult& cell) {
  out.str(cell.scenario);
  out.u8(static_cast<std::uint8_t>(cell.strategy));
  out.u64(cell.seed);
  out.str(cell.implementation);
  put_bool(out, cell.started);
  put_bool(out, cell.completed);
  put_bool(out, cell.bootstrap_converged);
  put_bool(out, cell.bootstrap_from_cache);
  out.vu64(cell.episodes);
  out.vu64(cell.clones_run);
  out.vu64(cell.inputs_subjected);
  out.vu64(cell.faults);
  put_f64(out, cell.bootstrap_ms);
  put_f64(out, cell.wall_ms);
}

[[nodiscard]] util::Result<explore::CellResult> decode_cell(util::ByteReader& reader) {
  explore::CellResult cell;
  auto scenario = reader.str();
  if (!scenario) return scenario.error();
  cell.scenario = std::move(scenario).take();
  auto strategy = get_strategy(reader);
  if (!strategy) return strategy.error();
  cell.strategy = strategy.value();
  auto seed = reader.u64();
  if (!seed) return seed.error();
  cell.seed = seed.value();
  auto impl = reader.str();
  if (!impl) return impl.error();
  cell.implementation = std::move(impl).take();
  auto started = get_bool(reader, "cell.started");
  if (!started) return started.error();
  cell.started = started.value();
  auto completed = get_bool(reader, "cell.completed");
  if (!completed) return completed.error();
  cell.completed = completed.value();
  auto converged = get_bool(reader, "cell.bootstrap_converged");
  if (!converged) return converged.error();
  cell.bootstrap_converged = converged.value();
  auto from_cache = get_bool(reader, "cell.bootstrap_from_cache");
  if (!from_cache) return from_cache.error();
  cell.bootstrap_from_cache = from_cache.value();
  auto episodes = reader.vu64();
  if (!episodes) return episodes.error();
  cell.episodes = episodes.value();
  auto clones = reader.vu64();
  if (!clones) return clones.error();
  cell.clones_run = clones.value();
  auto inputs = reader.vu64();
  if (!inputs) return inputs.error();
  cell.inputs_subjected = inputs.value();
  auto faults = reader.vu64();
  if (!faults) return faults.error();
  cell.faults = faults.value();
  auto bootstrap_ms = get_f64(reader);
  if (!bootstrap_ms) return bootstrap_ms.error();
  cell.bootstrap_ms = bootstrap_ms.value();
  auto wall_ms = get_f64(reader);
  if (!wall_ms) return wall_ms.error();
  cell.wall_ms = wall_ms.value();
  return cell;
}

// --- envelope --------------------------------------------------------------

[[nodiscard]] util::Bytes seal(FrameTag tag, const util::ByteWriter& payload) {
  // The TAG sits inside the checksummed span: a flipped tag byte must fail
  // as shard.wire.checksum, never reparse the payload as another message
  // kind (the fuzz pass counts on this).
  util::ByteWriter body(payload.size() + 1);
  body.u8(static_cast<std::uint8_t>(tag));
  body.raw(payload.span());
  util::ByteWriter out(body.size() + 16);
  out.raw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kMagic), sizeof(kMagic)));
  out.u8(kVersion);
  out.u64(util::fnv1a(body.span()));
  out.raw(body.span());
  return std::move(out).take();
}

}  // namespace

WireCampaignSpec WireCampaignSpec::from_options(std::string scenario_set,
                                                const explore::CampaignOptions& options) {
  WireCampaignSpec spec;
  spec.scenario_set = std::move(scenario_set);
  spec.strategies = options.strategies;
  spec.seeds = options.determinism.seeds;
  spec.implementations = options.determinism.implementations;
  spec.episodes_per_cell = options.budgets.episodes_per_cell;
  spec.inputs_per_episode = options.budgets.inputs_per_episode;
  spec.bootstrap_events = options.budgets.bootstrap_events;
  spec.clone_event_budget = options.budgets.clone_event_budget;
  spec.clone_time_budget = options.budgets.clone_time_budget;
  spec.include_baseline_clone = options.budgets.include_baseline_clone;
  spec.live_state_cache = options.caching.live_state_cache;
  spec.share_solver_cache = options.caching.share_solver_cache;
  spec.prepared_clones = options.caching.prepared_clones;
  spec.delta_snapshots = options.caching.delta_snapshots;
  spec.workers = options.parallelism.workers;
  spec.nested = options.parallelism.nested;
  spec.rng_seed = options.determinism.rng_seed;
  spec.strategy_seed = options.determinism.strategy_seed;
  spec.oscillation_threshold = options.determinism.oscillation_threshold;
  spec.oscillation_early_exit = options.determinism.oscillation_early_exit;
  spec.bootstrap_early_exit = options.determinism.bootstrap_early_exit;
  return spec;
}

explore::CampaignOptions WireCampaignSpec::to_options() const {
  explore::CampaignOptions options;
  options.strategies = strategies;
  options.determinism.seeds = seeds;
  options.determinism.implementations = implementations;
  options.budgets.episodes_per_cell = episodes_per_cell;
  options.budgets.inputs_per_episode = inputs_per_episode;
  options.budgets.bootstrap_events = bootstrap_events;
  options.budgets.clone_event_budget = clone_event_budget;
  options.budgets.clone_time_budget = clone_time_budget;
  options.budgets.include_baseline_clone = include_baseline_clone;
  options.caching.live_state_cache = live_state_cache;
  options.caching.share_solver_cache = share_solver_cache;
  options.caching.prepared_clones = prepared_clones;
  options.caching.delta_snapshots = delta_snapshots;
  options.parallelism.workers = workers;
  options.parallelism.nested = nested;
  options.determinism.rng_seed = rng_seed;
  options.determinism.strategy_seed = strategy_seed;
  options.determinism.oscillation_threshold = oscillation_threshold;
  options.determinism.oscillation_early_exit = oscillation_early_exit;
  options.determinism.bootstrap_early_exit = bootstrap_early_exit;
  return options;
}

WireCellDescriptor WireCellDescriptor::from_descriptor(
    const explore::CellDescriptor& descriptor) {
  WireCellDescriptor out;
  out.index = descriptor.index;
  out.scenario = std::string(descriptor.scenario);
  out.strategy = std::string(descriptor.strategy);
  out.seed = descriptor.seed;
  out.implementation = std::string(descriptor.implementation);
  return out;
}

util::Bytes encode_job(const JobSpec& job) {
  util::ByteWriter payload;
  payload.u64(job.shard_id);
  encode_spec(payload, job.campaign);
  put_u64s(payload, job.cells);
  put_u64s(payload, job.unsat_seed);
  return seal(FrameTag::kJob, payload);
}

util::Bytes encode_cell_result(const CellResultMsg& message) {
  util::ByteWriter payload;
  payload.vu64(message.index);
  encode_cell(payload, message.result);
  payload.vu64(message.faults.size());
  for (const core::FaultReport& fault : message.faults) encode_fault(payload, fault);
  return seal(FrameTag::kCellResult, payload);
}

util::Bytes encode_shard_done(const ShardDoneMsg& message) {
  util::ByteWriter payload;
  payload.u64(message.shard_id);
  payload.vu64(message.cells_sent);
  put_u64s(payload, message.unsat_keys);
  return seal(FrameTag::kShardDone, payload);
}

util::Bytes encode_cell_descriptor(const WireCellDescriptor& descriptor) {
  util::ByteWriter payload;
  payload.vu64(descriptor.index);
  payload.str(descriptor.scenario);
  payload.str(descriptor.strategy);
  payload.u64(descriptor.seed);
  payload.str(descriptor.implementation);
  return seal(FrameTag::kCellDescriptor, payload);
}

util::Result<Message> decode_message(std::span<const std::uint8_t> data) {
  util::ByteReader reader(data);
  auto magic = reader.raw(sizeof(kMagic));
  if (!magic) return magic.error();
  if (!std::equal(magic.value().begin(), magic.value().end(),
                  reinterpret_cast<const std::uint8_t*>(kMagic))) {
    return util::make_error("shard.wire.magic", "not a DSHD envelope");
  }
  auto version = reader.u8();
  if (!version) return version.error();
  if (version.value() != kVersion) {
    return util::make_error("shard.wire.version",
                            "unknown wire version " + std::to_string(version.value()));
  }
  auto checksum = reader.u64();
  if (!checksum) return checksum.error();
  // Verify BEFORE parsing (the DSVC discipline): every corrupted or
  // truncated byte of the tag or payload is caught here deterministically,
  // so the field parsers below only ever see what an encoder wrote.
  const std::span<const std::uint8_t> body = data.subspan(reader.position());
  if (util::fnv1a(body) != checksum.value()) {
    return util::make_error("shard.wire.checksum", "payload checksum does not match");
  }
  auto tag = reader.u8();
  if (!tag) return tag.error();
  if (tag.value() < static_cast<std::uint8_t>(FrameTag::kJob) ||
      tag.value() > static_cast<std::uint8_t>(FrameTag::kCellDescriptor)) {
    return util::make_error("shard.wire.tag",
                            "unknown frame tag " + std::to_string(tag.value()));
  }

  Message message;
  switch (static_cast<FrameTag>(tag.value())) {
    case FrameTag::kJob: {
      JobSpec job;
      auto shard_id = reader.u64();
      if (!shard_id) return shard_id.error();
      job.shard_id = shard_id.value();
      auto spec = decode_spec(reader);
      if (!spec) return spec.error();
      job.campaign = std::move(spec).take();
      auto cells = get_u64s(reader);
      if (!cells) return cells.error();
      job.cells = std::move(cells).take();
      auto unsat = get_u64s(reader);
      if (!unsat) return unsat.error();
      job.unsat_seed = std::move(unsat).take();
      message = std::move(job);
      break;
    }
    case FrameTag::kCellResult: {
      CellResultMsg result;
      auto index = reader.vu64();
      if (!index) return index.error();
      result.index = index.value();
      auto cell = decode_cell(reader);
      if (!cell) return cell.error();
      result.result = std::move(cell).take();
      auto fault_count = reader.vu64();
      if (!fault_count) return fault_count.error();
      for (std::uint64_t i = 0; i < fault_count.value(); ++i) {
        auto fault = decode_fault(reader);
        if (!fault) return fault.error();
        result.faults.push_back(std::move(fault).take());
      }
      message = std::move(result);
      break;
    }
    case FrameTag::kShardDone: {
      ShardDoneMsg done;
      auto shard_id = reader.u64();
      if (!shard_id) return shard_id.error();
      done.shard_id = shard_id.value();
      auto cells_sent = reader.vu64();
      if (!cells_sent) return cells_sent.error();
      done.cells_sent = cells_sent.value();
      auto unsat = get_u64s(reader);
      if (!unsat) return unsat.error();
      done.unsat_keys = std::move(unsat).take();
      message = std::move(done);
      break;
    }
    case FrameTag::kCellDescriptor: {
      WireCellDescriptor descriptor;
      auto index = reader.vu64();
      if (!index) return index.error();
      descriptor.index = index.value();
      auto scenario = reader.str();
      if (!scenario) return scenario.error();
      descriptor.scenario = std::move(scenario).take();
      auto strategy = reader.str();
      if (!strategy) return strategy.error();
      descriptor.strategy = std::move(strategy).take();
      auto seed = reader.u64();
      if (!seed) return seed.error();
      descriptor.seed = seed.value();
      auto impl = reader.str();
      if (!impl) return impl.error();
      descriptor.implementation = std::move(impl).take();
      message = std::move(descriptor);
      break;
    }
  }
  if (!reader.exhausted()) {
    return util::make_error("shard.wire.trailing", "bytes after a complete payload");
  }
  return message;
}

void append_frame(util::Bytes& out, std::span<const std::uint8_t> message) {
  util::ByteWriter prefix;
  prefix.u32(static_cast<std::uint32_t>(message.size()));
  out.insert(out.end(), prefix.bytes().begin(), prefix.bytes().end());
  out.insert(out.end(), message.begin(), message.end());
}

void FrameBuffer::feed(std::span<const std::uint8_t> data) {
  // Compact lazily: only once the consumed prefix dominates the buffer, so
  // steady-state streaming is amortized O(bytes).
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

util::Result<std::optional<util::Bytes>> FrameBuffer::next_frame() {
  if (buf_.size() - pos_ < 4) return std::optional<util::Bytes>();
  const std::size_t length = (static_cast<std::size_t>(buf_[pos_]) << 24) |
                             (static_cast<std::size_t>(buf_[pos_ + 1]) << 16) |
                             (static_cast<std::size_t>(buf_[pos_ + 2]) << 8) |
                             static_cast<std::size_t>(buf_[pos_ + 3]);
  if (length > kMaxFrameBytes) {
    return util::make_error("shard.wire.frame_oversize",
                            "frame length " + std::to_string(length) + " exceeds cap");
  }
  if (buf_.size() - pos_ - 4 < length) return std::optional<util::Bytes>();
  const auto begin = buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 4);
  util::Bytes frame(begin, begin + static_cast<std::ptrdiff_t>(length));
  pos_ += 4 + length;
  return std::optional<util::Bytes>(std::move(frame));
}

}  // namespace dice::shard
