// The shard worker half of the deal/merge protocol (docs/SHARDING.md).
//
// One worker process runs ONE shard attempt: it reads a single kJob frame
// from `in_fd`, rebuilds the named campaign (shard::resolve_scenario_set +
// WireCampaignSpec::to_options — the same lowering the coordinator and the
// in-process Campaign use), executes only the job's canonical cell subset
// (MatrixOptions::cell_subset), streams one kCellResult frame per executed
// cell to `out_fd` as the merge flushes it, and terminates with a
// kShardDone receipt. The coordinator buffers everything and commits only
// on a valid done — so a worker that dies mid-stream rolls back cleanly.
//
// The chaos flags are the fault-injection TEST SEAM the coordinator tests
// drive (worker killed mid-shard / stalled past the inactivity deadline /
// corrupt frame). They exercise the real failure paths — a crash really is
// `_exit` mid-protocol, a stall really stops the byte stream — rather than
// simulating them coordinator-side.
#pragma once

#include <cstdint>
#include <optional>

#include "util/result.hpp"

namespace dice::shard {

/// Test-seam behavior for one worker process. Defaults are all off — a
/// production worker never constructs these.
struct WorkerChaos {
  /// _exit(2) after streaming this many cell results (crash mid-shard).
  std::optional<std::uint64_t> crash_after_cells;
  /// Stop emitting bytes (sleep forever) after this many cell results —
  /// the coordinator's inactivity deadline must fire.
  std::optional<std::uint64_t> stall_after_cells;
  /// Flip one payload byte of the first cell-result frame: the envelope
  /// checksum catches it coordinator-side as shard.wire.checksum.
  bool corrupt_frame = false;
};

/// Parses worker argv (past argv[0]):
///   --test-crash-after-cells=N
///   --test-stall-after-cells=N
///   --test-corrupt-frame
/// Unknown arguments fail with "shard.worker.args".
[[nodiscard]] util::Result<WorkerChaos> parse_worker_args(int argc, char** argv);

/// Runs the worker protocol over the given descriptors; returns the
/// process exit code. 0 = shard complete (kShardDone sent); nonzero exits
/// are terminal protocol failures the coordinator observes as EOF:
///   2 chaos crash (test seam)
///   3 write failure (coordinator went away)
///   4 malformed or missing job frame
///   5 job references an unknown scenario set
int worker_main(int in_fd, int out_fd, const WorkerChaos& chaos);

}  // namespace dice::shard
