// shard wire form (DSHD v1): the frames a ShardCoordinator and a
// dice_shard_worker exchange over pipes.
//
// Same envelope discipline as svc::ArtifactStore's DSVC files — magic,
// version byte, FNV-1a checksum verified BEFORE any payload parse, strict
// typed decode errors, canonical encode (equal values produce equal
// bytes) — because the wire crosses a process boundary into a coordinator
// that must never crash or mis-merge on a corrupt, truncated, or
// adversarial worker. Every message is one self-contained sealed envelope;
// on a pipe, envelopes travel inside u32-big-endian length-prefixed frames
// (append_frame / FrameBuffer).
//
// What travels:
//   kJob            coordinator -> worker: the campaign spec (by NAMED
//                   scenario set — blueprints never travel; both sides
//                   resolve the name through shard::resolve_scenario_set)
//                   plus the canonical cell indices this shard executes.
//   kCellResult     worker -> coordinator: one finished cell — its
//                   CellResult scalars plus the cell's deduplicated fault
//                   reports in serial encounter order, exactly what the
//                   in-process matrix would have handed the merger.
//   kShardDone      worker -> coordinator: terminal receipt — cell count
//                   (the coordinator rejects a short shard) and the
//                   shard's accumulated proven-UNSAT solver keys.
//   kCellDescriptor standalone CellDescriptor codec (logging, tests).
//
// Determinism contract (docs/SHARDING.md): everything that pins fault
// bytes — strategies, seeds, implementations, budgets, flags — is in
// WireCampaignSpec, and cells are addressed by CANONICAL index into
// explore::enumerate_cells, so a worker rebuilds the identical matrix and
// its per-cell results merge byte-identically to a single-process run.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "dice/report.hpp"
#include "explore/campaign.hpp"
#include "explore/matrix.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace dice::shard {

inline constexpr char kMagic[4] = {'D', 'S', 'H', 'D'};
inline constexpr std::uint8_t kVersion = 1;
/// Hard ceiling on one frame (64 MiB): a corrupt length prefix must not
/// make the coordinator allocate unbounded memory.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 26;

enum class FrameTag : std::uint8_t {
  kJob = 1,
  kCellResult = 2,
  kShardDone = 3,
  kCellDescriptor = 4,
};

/// The campaign knobs a worker needs to rebuild the byte-identical cell
/// space: a named scenario set plus every determinism-relevant option.
/// Pointer-shaped CampaignOptions fields (pool, caches, observers, trace,
/// deadline) intentionally do not travel: the worker owns its own.
struct WireCampaignSpec {
  std::string scenario_set;  ///< resolved via shard::resolve_scenario_set
  std::vector<explore::StrategyKind> strategies;
  std::vector<std::uint64_t> seeds;
  std::vector<std::string> implementations;
  // Budgets.
  std::uint64_t episodes_per_cell = 1;
  std::uint64_t inputs_per_episode = 32;
  std::uint64_t bootstrap_events = 500'000;
  std::uint64_t clone_event_budget = 200'000;
  std::uint64_t clone_time_budget = 0;
  bool include_baseline_clone = true;
  // Caching.
  bool live_state_cache = true;
  bool share_solver_cache = false;
  bool prepared_clones = true;
  bool delta_snapshots = true;
  // Parallelism INSIDE the worker process (threads, not processes).
  std::uint64_t workers = 1;
  bool nested = true;
  // Determinism.
  std::uint64_t rng_seed = 0xd1ce5eed;
  std::optional<std::uint64_t> strategy_seed;
  std::uint32_t oscillation_threshold = 8;
  bool oscillation_early_exit = true;
  bool bootstrap_early_exit = true;

  bool operator==(const WireCampaignSpec&) const = default;

  /// Captures the wire-relevant subset of validated CampaignOptions.
  [[nodiscard]] static WireCampaignSpec from_options(
      std::string scenario_set, const explore::CampaignOptions& options);
  /// The reverse lowering: a CampaignOptions whose determinism-relevant
  /// fields equal the originals (pointers null, no deadline).
  [[nodiscard]] explore::CampaignOptions to_options() const;
};

/// coordinator -> worker: run these canonical cells of this campaign.
struct JobSpec {
  std::uint64_t shard_id = 0;
  WireCampaignSpec campaign;
  std::vector<std::uint64_t> cells;  ///< canonical indices (enumerate_cells)
  /// Proven-UNSAT solver keys to pre-seed the worker's caches with — the
  /// warm-start path crossing the process boundary. Sound and byte-stable
  /// (a seeded hit returns the verdict a fresh solve would reach).
  std::vector<std::uint64_t> unsat_seed;

  bool operator==(const JobSpec&) const = default;
};

/// worker -> coordinator: one finished cell, with the fault evidence the
/// in-process merge path would have received.
struct CellResultMsg {
  std::uint64_t index = 0;  ///< canonical cell index
  explore::CellResult result;
  /// The cell's deduplicated faults in serial encounter order — what
  /// CellMerger::record_faults takes.
  std::vector<core::FaultReport> faults;
};

/// worker -> coordinator: terminal shard receipt.
struct ShardDoneMsg {
  std::uint64_t shard_id = 0;
  /// How many kCellResult frames preceded this. The coordinator rejects a
  /// done whose count disagrees with what it received or was dealt — a
  /// silently short merge is a failed attempt, never a success.
  std::uint64_t cells_sent = 0;
  std::vector<std::uint64_t> unsat_keys;

  bool operator==(const ShardDoneMsg&) const = default;
};

/// Owning mirror of explore::CellDescriptor (which borrows string_views):
/// the decode side must own its strings.
struct WireCellDescriptor {
  std::uint64_t index = 0;
  std::string scenario;
  std::string strategy;
  std::uint64_t seed = 0;
  std::string implementation;

  bool operator==(const WireCellDescriptor&) const = default;

  [[nodiscard]] static WireCellDescriptor from_descriptor(
      const explore::CellDescriptor& descriptor);
};

/// Sealed envelopes: magic + version + checksum + (tag + payload), with
/// the checksum covering tag AND payload — a flipped tag must fail typed,
/// never reparse the payload as another message kind. Encoding is
/// canonical: equal message values produce equal bytes.
[[nodiscard]] util::Bytes encode_job(const JobSpec& job);
[[nodiscard]] util::Bytes encode_cell_result(const CellResultMsg& message);
[[nodiscard]] util::Bytes encode_shard_done(const ShardDoneMsg& message);
[[nodiscard]] util::Bytes encode_cell_descriptor(const WireCellDescriptor& descriptor);

using Message = std::variant<JobSpec, CellResultMsg, ShardDoneMsg, WireCellDescriptor>;

/// Decodes one sealed envelope. Typed failures, never a crash:
///   shard.wire.magic      not a DSHD envelope
///   shard.wire.version    unknown version byte
///   shard.wire.tag        unknown frame tag
///   shard.wire.checksum   payload bytes do not match the checksum
///                         (verified BEFORE the payload parser runs)
///   shard.wire.value      a field holds an impossible value (bad enum,
///                         non-0/1 bool) despite a valid checksum
///   shard.wire.trailing   bytes after a complete payload
///   bytes.truncated / bytes.varint.malformed   short or malformed reads
[[nodiscard]] util::Result<Message> decode_message(std::span<const std::uint8_t> data);

/// Appends `message` to `out` as one u32-big-endian length-prefixed frame.
void append_frame(util::Bytes& out, std::span<const std::uint8_t> message);

/// Reassembles length-prefixed frames from an arbitrarily-chunked byte
/// stream (pipes deliver whatever they like). feed() bytes as they arrive;
/// next_frame() yields each complete frame's envelope bytes, nullopt when
/// more input is needed, or shard.wire.frame_oversize for a length prefix
/// past kMaxFrameBytes (the stream is poisoned — the caller must fail the
/// connection, not resynchronize).
class FrameBuffer {
 public:
  void feed(std::span<const std::uint8_t> data);
  [[nodiscard]] util::Result<std::optional<util::Bytes>> next_frame();
  /// Bytes buffered but not yet returned as frames.
  [[nodiscard]] std::size_t pending_bytes() const noexcept { return buf_.size() - pos_; }

 private:
  util::Bytes buf_;
  std::size_t pos_ = 0;
};

}  // namespace dice::shard
