#include "shard/coordinator.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstring>
#include <unordered_set>

#include "explore/merge.hpp"
#include "shard/scenario_set.hpp"
#include "shard/wire.hpp"
#include "util/log.hpp"

namespace dice::shard {

namespace {

const util::Logger& logger() {
  static util::Logger instance("shard.coord");
  return instance;
}

using Clock = std::chrono::steady_clock;

/// One live worker process: the pipe end we read, its reassembly buffer,
/// and the attempt's BUFFERED results (committed only on a valid done).
struct WorkerProc {
  pid_t pid = -1;
  int out_fd = -1;
  FrameBuffer frames;
  std::vector<CellResultMsg> pending;
  std::unordered_set<std::uint64_t> seen;  ///< duplicate-index guard
  Clock::time_point last_activity;
};

struct Shard {
  std::size_t id = 0;
  std::vector<std::uint64_t> cells;
  std::unordered_set<std::uint64_t> assigned;
  std::size_t attempt = 0;
  bool live = false;      ///< a worker process is currently running it
  bool resolved = false;  ///< committed or lost
  WorkerProc proc;
  util::Bytes job_frame;  ///< prebuilt kJob frame (identical every attempt)
};

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Reaps `pid` (blocking) and renders its status for failure details.
[[nodiscard]] std::string reap(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  if (WIFEXITED(status)) return "exit " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status)) return "signal " + std::to_string(WTERMSIG(status));
  return "status " + std::to_string(status);
}

[[nodiscard]] bool write_all(int fd, std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

util::Status ShardOptions::validate() const {
  if (processes == 0) {
    return util::make_error("shard.options.processes", "processes must be >= 1");
  }
  if (worker_path.empty()) {
    return util::make_error("shard.options.worker_path", "worker_path is empty");
  }
  if (auto scenarios = resolve_scenario_set(scenario_set); !scenarios) {
    return util::make_error("shard.options.scenario_set", scenarios.error().detail);
  }
  return util::Status::success();
}

ShardCoordinator::ShardCoordinator(explore::CampaignOptions campaign, ShardOptions options)
    : campaign_(std::move(campaign)), options_(std::move(options)) {}

util::Result<ShardRunResult> ShardCoordinator::run(
    explore::CampaignObserver* observer, const std::vector<std::uint64_t>* unsat_seed) {
  if (auto status = options_.validate(); !status.ok()) return status.error();
  // A worker that died between poll() and our write must surface as EPIPE,
  // not SIGPIPE death of the coordinator.
  std::signal(SIGPIPE, SIG_IGN);

  auto scenarios = resolve_scenario_set(options_.scenario_set);
  if (!scenarios) return scenarios.error();
  explore::MatrixOptions matrix_options = campaign_.to_matrix_options();
  if (matrix_options.implementations.empty()) {
    matrix_options.implementations.push_back(std::string());
  }
  const std::vector<explore::CellIdentity> cells =
      explore::enumerate_cells(scenarios.value().size(), matrix_options);

  ShardRunResult out;
  out.matrix.cells.resize(cells.size());
  // Identity prefill, exactly like the in-process matrix: lost cells must
  // still describe themselves in the partial result and observer stream.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out.matrix.cells[i].scenario = scenarios.value()[cells[i].scenario].name;
    out.matrix.cells[i].strategy = cells[i].strategy;
    out.matrix.cells[i].seed = cells[i].seed;
    out.matrix.cells[i].implementation =
        matrix_options.implementations[cells[i].impl_pos];
  }

  explore::CellMerger::Options merge_options;
  merge_options.observer = observer;
  merge_options.progress_every_cells = campaign_.telemetry.progress_every_cells;
  explore::CellMerger merger(&out.matrix.cells, merge_options);

  // The deal: cell i -> shard i % processes. Deterministic, and it spreads
  // scenarios/bootstrap keys across workers the way the in-process
  // interleave spreads them across threads. Empty shards (more processes
  // than cells) resolve immediately without a spawn.
  WireCampaignSpec spec = WireCampaignSpec::from_options(options_.scenario_set, campaign_);
  std::vector<Shard> shards(options_.processes);
  for (std::size_t s = 0; s < shards.size(); ++s) shards[s].id = s;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    shards[i % shards.size()].cells.push_back(i);
  }
  std::size_t unresolved = 0;
  for (Shard& shard : shards) {
    shard.assigned.insert(shard.cells.begin(), shard.cells.end());
    JobSpec job;
    job.shard_id = shard.id;
    job.campaign = spec;
    job.cells = shard.cells;
    if (unsat_seed != nullptr) job.unsat_seed = *unsat_seed;
    append_frame(shard.job_frame, encode_job(job));
    if (shard.cells.empty()) {
      shard.resolved = true;
    } else {
      ++unresolved;
    }
  }
  out.shards = unresolved;

  std::vector<std::uint64_t> unsat_union;
  if (unsat_seed != nullptr) {
    unsat_union.insert(unsat_union.end(), unsat_seed->begin(), unsat_seed->end());
  }

  // --- spawn ---------------------------------------------------------------
  const auto spawn = [&](Shard& shard) -> util::Status {
    int in_pipe[2];   // coordinator writes job -> worker stdin
    int out_pipe[2];  // worker stdout -> coordinator reads frames
    if (::pipe(in_pipe) != 0) {
      return util::make_error("shard.spawn.pipe", std::strerror(errno));
    }
    if (::pipe(out_pipe) != 0) {
      const int saved = errno;
      ::close(in_pipe[0]);
      ::close(in_pipe[1]);
      return util::make_error("shard.spawn.pipe", std::strerror(saved));
    }
    std::vector<std::string> args;
    args.push_back(options_.worker_path);
    if (shard.attempt == 0) {
      // The chaos seam applies to the FIRST spawn only: a re-deal runs a
      // clean worker, so injected failures recover through the real path.
      args.insert(args.end(), options_.first_attempt_args.begin(),
                  options_.first_attempt_args.end());
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      const int saved = errno;
      for (const int fd : {in_pipe[0], in_pipe[1], out_pipe[0], out_pipe[1]}) ::close(fd);
      return util::make_error("shard.spawn.fork", std::strerror(saved));
    }
    if (pid == 0) {
      ::dup2(in_pipe[0], STDIN_FILENO);
      ::dup2(out_pipe[1], STDOUT_FILENO);
      for (const int fd : {in_pipe[0], in_pipe[1], out_pipe[0], out_pipe[1]}) ::close(fd);
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      _exit(127);
    }
    ::close(in_pipe[0]);
    ::close(out_pipe[1]);
    // The job is small and the worker's first act is reading it; a worker
    // that dies first turns this into EPIPE, which the event loop observes
    // as EOF-before-done (a failed attempt).
    (void)write_all(in_pipe[1], shard.job_frame);
    ::close(in_pipe[1]);
    ::fcntl(out_pipe[0], F_SETFL, O_NONBLOCK);
    shard.proc = WorkerProc{};
    shard.proc.pid = pid;
    shard.proc.out_fd = out_pipe[0];
    shard.proc.last_activity = Clock::now();
    shard.live = true;
    ++out.workers_spawned;
    return util::Status::success();
  };

  // --- attempt teardown ----------------------------------------------------
  // Rolls the attempt back (buffered results discarded), records the typed
  // failure, and either re-deals to a fresh worker or declares the loss.
  const auto fail_attempt = [&](Shard& shard, const std::string& code,
                                const std::string& detail, bool kill_first) {
    if (kill_first && shard.proc.pid > 0) ::kill(shard.proc.pid, SIGKILL);
    std::string exit_detail;
    if (shard.proc.pid > 0) exit_detail = reap(shard.proc.pid);
    close_fd(shard.proc.out_fd);
    shard.live = false;
    const std::string full_detail =
        detail + (exit_detail.empty() ? "" : " (worker " + exit_detail + ")");
    out.failures.push_back(ShardAttemptFailure{shard.id, shard.attempt, code, full_detail});
    logger().warn() << "shard " << shard.id << " attempt " << shard.attempt
                    << " failed [" << code << "]: " << full_detail;
    if (shard.attempt < options_.max_redeals) {
      ++shard.attempt;
      ++out.redeals;
      if (auto status = spawn(shard); !status.ok()) {
        // Could not even respawn (fd/process exhaustion): the shard is
        // lost with the spawn error, not crashed on.
        ShardLoss loss;
        loss.shard = shard.id;
        loss.cells.assign(shard.cells.begin(), shard.cells.end());
        loss.code = status.error().code;
        loss.detail = status.error().detail;
        out.losses.push_back(std::move(loss));
        shard.resolved = true;
        --unresolved;
      }
      return;
    }
    ShardLoss loss;
    loss.shard = shard.id;
    loss.cells.assign(shard.cells.begin(), shard.cells.end());
    loss.code = code;
    loss.detail = full_detail;
    out.losses.push_back(std::move(loss));
    shard.resolved = true;
    --unresolved;
  };

  // --- commit --------------------------------------------------------------
  const auto commit = [&](Shard& shard, const ShardDoneMsg& done) -> bool {
    if (done.shard_id != shard.id || done.cells_sent != shard.proc.pending.size() ||
        shard.proc.pending.size() != shard.cells.size()) {
      return false;  // short or mislabeled shard: caller fails the attempt
    }
    for (CellResultMsg& message : shard.proc.pending) {
      const std::size_t index = static_cast<std::size_t>(message.index);
      out.matrix.cells[index] = std::move(message.result);
      merger.record_faults(index, message.faults);
      merger.finish_cell(index);
    }
    unsat_union.insert(unsat_union.end(), done.unsat_keys.begin(),
                       done.unsat_keys.end());
    close_fd(shard.proc.out_fd);
    (void)reap(shard.proc.pid);  // worker exits right after its receipt
    shard.live = false;
    shard.resolved = true;
    --unresolved;
    return true;
  };

  // Drains complete frames from a shard's buffer. Returns false when the
  // attempt failed (the shard was torn down inside).
  const auto drain_frames = [&](Shard& shard) -> bool {
    for (;;) {
      auto frame = shard.proc.frames.next_frame();
      if (!frame) {
        fail_attempt(shard, frame.error().code, frame.error().detail, /*kill_first=*/true);
        return false;
      }
      if (!frame.value().has_value()) return true;
      auto message = decode_message(*frame.value());
      if (!message) {
        fail_attempt(shard, message.error().code, message.error().detail,
                     /*kill_first=*/true);
        return false;
      }
      if (auto* cell = std::get_if<CellResultMsg>(&message.value())) {
        if (!shard.assigned.contains(cell->index) ||
            !shard.proc.seen.insert(cell->index).second) {
          fail_attempt(shard, "shard.worker.protocol",
                       "unassigned or duplicate cell " + std::to_string(cell->index),
                       /*kill_first=*/true);
          return false;
        }
        shard.proc.pending.push_back(std::move(*cell));
        continue;
      }
      if (auto* done = std::get_if<ShardDoneMsg>(&message.value())) {
        if (!commit(shard, *done)) {
          fail_attempt(shard, "shard.worker.short",
                       "done receipt disagrees with the deal: sent=" +
                           std::to_string(done->cells_sent) + " buffered=" +
                           std::to_string(shard.proc.pending.size()) + " dealt=" +
                           std::to_string(shard.cells.size()),
                       /*kill_first=*/true);
          return false;
        }
        return true;
      }
      fail_attempt(shard, "shard.worker.protocol", "unexpected frame tag",
                   /*kill_first=*/true);
      return false;
    }
  };

  for (Shard& shard : shards) {
    if (shard.resolved) continue;
    if (auto status = spawn(shard); !status.ok()) return status.error();
  }

  // --- event loop ----------------------------------------------------------
  const auto inactivity = std::chrono::milliseconds(options_.inactivity_timeout_ms);
  std::vector<pollfd> fds;
  std::vector<Shard*> polled;
  while (unresolved > 0) {
    fds.clear();
    polled.clear();
    Clock::time_point next_deadline = Clock::time_point::max();
    for (Shard& shard : shards) {
      if (!shard.live) continue;
      fds.push_back(pollfd{shard.proc.out_fd, POLLIN, 0});
      polled.push_back(&shard);
      next_deadline = std::min(next_deadline, shard.proc.last_activity + inactivity);
    }
    if (fds.empty()) break;  // defensive: all live shards torn down above
    const auto now = Clock::now();
    const int timeout_ms =
        next_deadline <= now
            ? 0
            : static_cast<int>(std::min<std::int64_t>(
                  std::chrono::duration_cast<std::chrono::milliseconds>(next_deadline -
                                                                        now)
                          .count() +
                      1,
                  60'000));
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      return util::make_error("shard.spawn.poll", std::strerror(errno));
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      Shard& shard = *polled[i];
      if (!shard.live) continue;  // torn down earlier this sweep
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      bool eof = false;
      for (;;) {
        std::uint8_t chunk[16384];
        const ssize_t n = ::read(shard.proc.out_fd, chunk, sizeof(chunk));
        if (n > 0) {
          shard.proc.last_activity = Clock::now();
          shard.proc.frames.feed(
              std::span<const std::uint8_t>(chunk, static_cast<std::size_t>(n)));
          continue;
        }
        if (n == 0) {
          eof = true;
          break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        eof = true;  // unreadable pipe == connection gone
        break;
      }
      if (!drain_frames(shard)) continue;
      if (shard.live && eof) {
        // EOF before a committed done: the worker crashed (or exited
        // without its receipt). reap() inside fail_attempt records how.
        fail_attempt(shard, "shard.worker.crash", "pipe closed before shard done",
                     /*kill_first=*/false);
      }
    }
    const auto deadline_now = Clock::now();
    for (Shard& shard : shards) {
      if (!shard.live) continue;
      if (deadline_now - shard.proc.last_activity >= inactivity) {
        fail_attempt(shard, "shard.worker.stall",
                     "no frames for " + std::to_string(options_.inactivity_timeout_ms) +
                         "ms",
                     /*kill_first=*/true);
      }
    }
  }

  // Lost shards' cells flush as skipped: the observer stream covers every
  // cell exactly once and the partial result is well-formed, never short.
  merger.finish_remaining();
  out.matrix.faults = merger.canonical_faults();
  std::sort(unsat_union.begin(), unsat_union.end());
  unsat_union.erase(std::unique(unsat_union.begin(), unsat_union.end()),
                    unsat_union.end());
  out.matrix.unsat_keys = std::move(unsat_union);
  for (const explore::CellResult& cell : out.matrix.cells) {
    if (cell.completed) ++out.matrix.cells_completed;
  }
  out.matrix.stopped = out.matrix.cells_completed != out.matrix.cells.size();
  logger().info() << "merged " << out.matrix.cells_completed << "/"
                  << out.matrix.cells.size() << " cell(s) from " << out.shards
                  << " shard(s), " << out.redeals << " redeal(s), " << out.losses.size()
                  << " loss(es)";
  return out;
}

}  // namespace dice::shard
