#include "shard/worker.hpp"

#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "explore/matrix.hpp"
#include "explore/pool.hpp"
#include "shard/scenario_set.hpp"
#include "shard/wire.hpp"
#include "util/log.hpp"

namespace dice::shard {

namespace {

const util::Logger& logger() {
  static util::Logger instance("shard.worker");
  return instance;
}

/// write() the whole span, retrying short writes and EINTR. False on any
/// terminal error (EPIPE when the coordinator died — SIGPIPE is ignored).
[[nodiscard]] bool write_all(int fd, std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Streams kCellResult frames for executed cells as the canonical merge
/// flushes them. Runs under the merger's flush mutex — single-threaded by
/// construction, so the plain counters need no synchronization.
class StreamObserver final : public explore::CampaignObserver {
 public:
  StreamObserver(int out_fd, const WorkerChaos& chaos) : out_fd_(out_fd), chaos_(chaos) {}

  void on_fault(const explore::CellDescriptor& cell,
                const core::FaultReport& fault) override {
    (void)cell;
    faults_.push_back(fault);
  }

  void on_cell_done(const explore::CellDescriptor& cell,
                    const explore::CellResult& result) override {
    std::vector<core::FaultReport> faults;
    faults.swap(faults_);
    // started == false marks a cell outside this shard's subset — another
    // worker owns it; streaming it would double-merge coordinator-side.
    if (!result.started || failed_) return;
    CellResultMsg message;
    message.index = cell.index;
    message.result = result;
    message.faults = std::move(faults);
    util::Bytes frame;
    append_frame(frame, encode_cell_result(message));
    if (chaos_.corrupt_frame && sent_ == 0) {
      // Flip a payload byte (past the 4-byte length prefix and the
      // envelope header): framing stays intact, the checksum does not.
      frame.back() ^= 0xff;
    }
    if (!write_all(out_fd_, frame)) {
      failed_ = true;
      return;
    }
    ++sent_;
    if (chaos_.crash_after_cells && sent_ >= *chaos_.crash_after_cells) {
      _exit(2);  // the test seam's mid-shard crash: no flush, no goodbye
    }
    if (chaos_.stall_after_cells && sent_ >= *chaos_.stall_after_cells) {
      // Stall: stop producing bytes without exiting, until the
      // coordinator's inactivity deadline SIGKILLs us.
      for (;;) pause();
    }
  }

  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] bool failed() const noexcept { return failed_; }

 private:
  int out_fd_;
  WorkerChaos chaos_;
  std::vector<core::FaultReport> faults_;  ///< current cell, canonical order
  std::uint64_t sent_ = 0;
  bool failed_ = false;
};

[[nodiscard]] util::Result<JobSpec> read_job(int in_fd) {
  FrameBuffer frames;
  std::uint8_t chunk[4096];
  for (;;) {
    auto frame = frames.next_frame();
    if (!frame) return frame.error();
    if (frame.value().has_value()) {
      auto message = decode_message(*frame.value());
      if (!message) return message.error();
      if (auto* job = std::get_if<JobSpec>(&message.value())) return std::move(*job);
      return util::make_error("shard.worker.protocol", "first frame is not a job");
    }
    const ssize_t n = ::read(in_fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::make_error("shard.worker.io", std::strerror(errno));
    }
    if (n == 0) {
      return util::make_error("shard.worker.protocol", "pipe closed before a job frame");
    }
    frames.feed(std::span<const std::uint8_t>(chunk, static_cast<std::size_t>(n)));
  }
}

}  // namespace

util::Result<WorkerChaos> parse_worker_args(int argc, char** argv) {
  WorkerChaos chaos;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto uint_flag = [&](std::string_view prefix) -> std::optional<std::uint64_t> {
      if (!arg.starts_with(prefix)) return std::nullopt;
      return std::strtoull(std::string(arg.substr(prefix.size())).c_str(), nullptr, 10);
    };
    if (const auto n = uint_flag("--test-crash-after-cells=")) {
      chaos.crash_after_cells = *n;
    } else if (const auto n = uint_flag("--test-stall-after-cells=")) {
      chaos.stall_after_cells = *n;
    } else if (arg == "--test-corrupt-frame") {
      chaos.corrupt_frame = true;
    } else {
      return util::make_error("shard.worker.args",
                              "unknown argument '" + std::string(arg) + "'");
    }
  }
  return chaos;
}

int worker_main(int in_fd, int out_fd, const WorkerChaos& chaos) {
  // A dead coordinator must surface as EPIPE from write(), not SIGPIPE
  // death: the exit path stays typed either way.
  std::signal(SIGPIPE, SIG_IGN);

  auto job = read_job(in_fd);
  if (!job) {
    logger().error() << "job read failed: " << job.error().detail;
    return 4;
  }
  auto scenarios = resolve_scenario_set(job.value().campaign.scenario_set);
  if (!scenarios) {
    logger().error() << scenarios.error().detail;
    return 5;
  }

  const explore::CampaignOptions campaign = job.value().campaign.to_options();
  explore::MatrixOptions options = campaign.to_matrix_options();
  options.cell_subset.emplace(job.value().cells.begin(), job.value().cells.end());
  // Warm-start seeding crosses the process boundary with the job; the
  // vector must outlive run().
  const std::vector<std::uint64_t> unsat_seed = job.value().unsat_seed;
  if (!unsat_seed.empty()) options.unsat_seed = &unsat_seed;

  explore::ExplorePool pool(campaign.parallelism.workers);
  explore::ScenarioMatrix matrix(std::move(scenarios).take(), options);
  StreamObserver observer(out_fd, chaos);
  explore::RunControl control;
  control.observer = &observer;
  const explore::MatrixResult result = matrix.run(pool, control);
  if (observer.failed()) return 3;

  ShardDoneMsg done;
  done.shard_id = job.value().shard_id;
  done.cells_sent = observer.sent();
  done.unsat_keys = result.unsat_keys;
  util::Bytes frame;
  append_frame(frame, encode_shard_done(done));
  if (!write_all(out_fd, frame)) return 3;
  logger().info() << "shard " << done.shard_id << " done: " << done.cells_sent
                  << " cell(s), " << result.faults.size() << " fault(s)";
  return 0;
}

}  // namespace dice::shard
