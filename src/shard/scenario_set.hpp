// Named scenario sets: how blueprints cross the process boundary WITHOUT
// traveling on the wire.
//
// A SystemBlueprint is a deep object graph (topology, policies, per-node
// implementation pins, injected defects); serializing it would add a large
// codec whose only consumer is sharding, and any drift between encoder and
// decoder would silently move fault bytes. Instead the JobSpec names a set,
// and coordinator and worker both resolve that name here — the same
// deterministic construction on both sides of the pipe, so the worker's
// ScenarioMatrix is the identical matrix by construction (the dfuntest
// shape: environments are prepared from a shared recipe, not shipped).
//
// Adding a set: the construction must be a pure function of the name — no
// randomness, no environment reads — or the cross-process determinism
// receipt (docs/SHARDING.md) breaks.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "explore/matrix.hpp"
#include "util/result.hpp"

namespace dice::shard {

/// Resolves a set name to its scenarios:
///   "bench"       explore::default_bench_scenarios() — the five bench
///                 topologies.
///   "topology27"  the single receipt scenario: the paper's 27-router
///                 Figure 1 internet with the latent more-specific hijack
///                 (victim 12, attacker 20) and the node-5 community-length
///                 parser bug — the blueprint behind the pinned
///                 `63f680b04458c2a9` hash.
///   "smoke"       two small fast topologies (6-router ring, BAD GADGET)
///                 for multi-cell shard tests and the scale bench.
/// Unknown names fail with "shard.scenario_set.unknown".
[[nodiscard]] util::Result<std::vector<explore::ScenarioSpec>> resolve_scenario_set(
    std::string_view name);

/// Every resolvable name, for diagnostics.
[[nodiscard]] std::vector<std::string> scenario_set_names();

}  // namespace dice::shard
